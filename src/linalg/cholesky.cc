#include "linalg/cholesky.hh"

#include <cmath>

#include "common/contracts.hh"
#include "common/logging.hh"

namespace archytas::linalg {

std::optional<Matrix>
cholesky(const Matrix &s)
{
    ARCHYTAS_CHECK_DIM("cholesky: square matrix required", s.cols(),
                       s.rows());
    const std::size_t n = s.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = s(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l(j, k) * l(j, k);
        if (diag <= 0.0)
            return std::nullopt;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = s(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            l(i, j) = acc / ljj;
        }
    }
    return l;
}

Vector
forwardSubstitute(const Matrix &l, const Vector &b)
{
    ARCHYTAS_CHECK_DIM("forwardSubstitute: square L required", l.cols(),
                       l.rows());
    ARCHYTAS_CHECK_DIM("forwardSubstitute: rhs size", b.size(), l.rows());
    const std::size_t n = b.size();
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l(i, k) * y[k];
        ARCHYTAS_ASSERT(l(i, i) != 0.0, "singular triangular matrix");
        y[i] = acc / l(i, i);
    }
    return y;
}

Vector
backwardSubstitute(const Matrix &l, const Vector &y)
{
    ARCHYTAS_CHECK_DIM("backwardSubstitute: square L required", l.cols(),
                       l.rows());
    ARCHYTAS_CHECK_DIM("backwardSubstitute: rhs size", y.size(), l.rows());
    const std::size_t n = y.size();
    Vector x(n);
    for (std::size_t ii = 0; ii < n; ++ii) {
        const std::size_t i = n - 1 - ii;
        double acc = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= l(k, i) * x[k];
        ARCHYTAS_ASSERT(l(i, i) != 0.0, "singular triangular matrix");
        x[i] = acc / l(i, i);
    }
    return x;
}

Vector
choleskySolve(const Matrix &s, const Vector &b)
{
    ARCHYTAS_CHECK_DIM("choleskySolve: rhs size", b.size(), s.rows());
    auto l = cholesky(s);
    if (!l)
        ARCHYTAS_FATAL("choleskySolve: matrix is not positive definite");
    return backwardSubstitute(*l, forwardSubstitute(*l, b));
}

Matrix
choleskyInverse(const Matrix &s)
{
    ARCHYTAS_CHECK_DIM("choleskyInverse: square input", s.cols(), s.rows());
    auto l = cholesky(s);
    if (!l)
        ARCHYTAS_FATAL("choleskyInverse: matrix is not positive definite");
    const std::size_t n = s.rows();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        Vector e(n);
        e[c] = 1.0;
        const Vector col = backwardSubstitute(*l, forwardSubstitute(*l, e));
        for (std::size_t r = 0; r < n; ++r)
            inv(r, c) = col[r];
    }
    return inv;
}

Matrix
diagonalInverse(const Matrix &d)
{
    ARCHYTAS_CHECK_DIM("diagonalInverse: square matrix required", d.cols(),
                       d.rows());
    const std::size_t n = d.rows();
    Matrix inv(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        if (d(i, i) == 0.0)
            ARCHYTAS_FATAL("diagonalInverse: zero diagonal entry at ", i);
        inv(i, i) = 1.0 / d(i, i);
    }
    return inv;
}

} // namespace archytas::linalg
