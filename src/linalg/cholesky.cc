#include "linalg/cholesky.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/logging.hh"
#include "linalg/simd.hh"

namespace archytas::linalg {

std::optional<Matrix>
cholesky(const Matrix &s)
{
    Matrix l;
    if (!choleskyInto(l, s))
        return std::nullopt;
    return l;
}

bool
choleskyInto(Matrix &l, const Matrix &s)
{
    ARCHYTAS_CHECK_DIM("cholesky: square matrix required", s.cols(),
                       s.rows());
    const std::size_t n = s.rows();
    if (l.rows() != n || l.cols() != n)
        l = Matrix(n, n);
    const simd::Ops &v = simd::ops();
    for (std::size_t j = 0; j < n; ++j) {
        double *lj = l.rowPtr(j);
        const double diag = s(j, j) - v.dot(lj, lj, j);
        if (diag <= 0.0)
            return false;
        const double ljj = std::sqrt(diag);
        lj[j] = ljj;
        // Keep the strict upper triangle zeroed so a reused destination
        // matches a freshly allocated one bit-for-bit.
        std::fill(lj + j + 1, lj + n, 0.0);
        const double inv_ljj = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double *li = l.rowPtr(i);
            li[j] = (s(i, j) - v.dot(li, lj, j)) * inv_ljj;
        }
    }
    return true;
}

Vector
forwardSubstitute(const Matrix &l, const Vector &b)
{
    Vector y;
    forwardSubstituteInto(y, l, b);
    return y;
}

void
forwardSubstituteInto(Vector &y, const Matrix &l, const Vector &b)
{
    ARCHYTAS_CHECK_DIM("forwardSubstitute: square L required", l.cols(),
                       l.rows());
    ARCHYTAS_CHECK_DIM("forwardSubstitute: rhs size", b.size(), l.rows());
    ARCHYTAS_DCHECK(&y != &b, "forwardSubstituteInto: y aliases b");
    const std::size_t n = b.size();
    if (y.size() != n)
        y = Vector(n);
    const simd::Ops &v = simd::ops();
    double *yp = y.data().data();
    for (std::size_t i = 0; i < n; ++i) {
        const double *li = l.rowPtr(i);
        const double acc = b[i] - v.dot(li, yp, i);
        ARCHYTAS_ASSERT(li[i] != 0.0, "singular triangular matrix");
        yp[i] = acc / li[i];
    }
}

Vector
backwardSubstitute(const Matrix &l, const Vector &y)
{
    Vector x;
    backwardSubstituteInto(x, l, y);
    return x;
}

void
backwardSubstituteInto(Vector &x, const Matrix &l, const Vector &y)
{
    ARCHYTAS_CHECK_DIM("backwardSubstitute: square L required", l.cols(),
                       l.rows());
    ARCHYTAS_CHECK_DIM("backwardSubstitute: rhs size", y.size(), l.rows());
    ARCHYTAS_DCHECK(&x != &y, "backwardSubstituteInto: x aliases y");
    const std::size_t n = y.size();
    if (x.size() != n)
        x = Vector(n);
    for (std::size_t ii = 0; ii < n; ++ii) {
        const std::size_t i = n - 1 - ii;
        double acc = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= l(k, i) * x[k];
        ARCHYTAS_ASSERT(l(i, i) != 0.0, "singular triangular matrix");
        x[i] = acc / l(i, i);
    }
}

Vector
choleskySolve(const Matrix &s, const Vector &b)
{
    ARCHYTAS_CHECK_DIM("choleskySolve: rhs size", b.size(), s.rows());
    auto l = cholesky(s);
    if (!l)
        ARCHYTAS_FATAL("choleskySolve: matrix is not positive definite");
    return backwardSubstitute(*l, forwardSubstitute(*l, b));
}

Matrix
choleskyInverse(const Matrix &s)
{
    ARCHYTAS_CHECK_DIM("choleskyInverse: square input", s.cols(), s.rows());
    auto l = cholesky(s);
    if (!l)
        ARCHYTAS_FATAL("choleskyInverse: matrix is not positive definite");
    const std::size_t n = s.rows();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        Vector e(n);
        e[c] = 1.0;
        const Vector col = backwardSubstitute(*l, forwardSubstitute(*l, e));
        for (std::size_t r = 0; r < n; ++r)
            inv(r, c) = col[r];
    }
    return inv;
}

Matrix
diagonalInverse(const Matrix &d)
{
    ARCHYTAS_CHECK_DIM("diagonalInverse: square matrix required", d.cols(),
                       d.rows());
    const std::size_t n = d.rows();
    Matrix inv(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        if (d(i, i) == 0.0)
            ARCHYTAS_FATAL("diagonalInverse: zero diagonal entry at ", i);
        inv(i, i) = 1.0 / d(i, i);
    }
    return inv;
}

} // namespace archytas::linalg
