#include "linalg/kernels.hh"

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "linalg/simd.hh"

namespace archytas::linalg {

namespace {

/** Reuses the destination's storage when the shape already matches. */
void
resizeMatrix(Matrix &out, std::size_t rows, std::size_t cols)
{
    if (out.rows() == rows && out.cols() == cols) {
        out.setZero();
        return;
    }
    // archytas-analyzer: allow(hot-path-alloc) -- shape-change slow path:
    // allocates only when the destination does not already fit, which the
    // steady-state solver loop never hits.
    out = Matrix(rows, cols);
}

/** Work threshold (multiply-adds) below which threading cannot pay. */
constexpr std::size_t kParallelFlopThreshold = 64 * 1024;

/**
 * Span width below which the axpy call overhead beats the vector win;
 * narrow blocks take a fixed-order scalar path instead. The branch is
 * on shape, never data, so it cannot break per-backend determinism.
 */
constexpr std::size_t kNarrowSpan = 4;

template <typename Dst>
void
addOuterProductTransposedImpl(Dst &h, std::size_t r0, std::size_t c0,
                              const Matrix &a, const Matrix &b, double wt)
{
    const std::size_t rows = a.rows();
    const std::size_t ac = a.cols();
    const std::size_t bc = b.cols();
    if (bc >= kNarrowSpan) {
        const simd::Ops &v = simd::ops();
        // Rank-1 per residual row: h_block(i, :) += (wt a(k, i)) b(k, :)
        // streams contiguous rows of b and h.
        for (std::size_t k = 0; k < rows; ++k) {
            const double *arow = a.rowPtr(k);
            const double *brow = b.rowPtr(k);
            for (std::size_t i = 0; i < ac; ++i)
                v.axpy(h.rowPtr(r0 + i) + c0, wt * arow[i], brow, bc);
        }
        return;
    }
    for (std::size_t i = 0; i < ac; ++i) {
        double *hrow = h.rowPtr(r0 + i) + c0;
        for (std::size_t j = 0; j < bc; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < rows; ++k)
                acc += a(k, i) * b(k, j);
            hrow[j] += wt * acc;
        }
    }
}

} // namespace

void
multiplyInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    ARCHYTAS_CHECK_DIM("multiplyInto inner dimension", b.rows(), a.cols());
    ARCHYTAS_DCHECK(&out != &a && &out != &b,
                    "multiplyInto: destination aliases an operand");
    resizeMatrix(out, a.rows(), b.cols());
    const std::size_t inner = a.cols();
    const std::size_t cols = b.cols();
    const simd::Ops &v = simd::ops();
    const auto rowProduct = [&](std::size_t i) {
        // i-k-j order keeps the inner loop streaming over contiguous
        // rows; every out(i, j) is owned by exactly one task, so the
        // schedule cannot change the result.
        double *orow = out.rowPtr(i);
        const double *arow = a.rowPtr(i);
        for (std::size_t k = 0; k < inner; ++k) {
            const double av = arow[k];
            if (av == 0.0)
                continue;
            v.axpy(orow, av, b.rowPtr(k), cols);
        }
    };
    if (a.rows() * inner * cols >= kParallelFlopThreshold)
        parallel::parallelFor(0, a.rows(), rowProduct);
    else
        for (std::size_t i = 0; i < a.rows(); ++i)
            rowProduct(i);
}

void
multiplyInto(Vector &out, const Matrix &a, const Vector &x)
{
    ARCHYTAS_CHECK_DIM("multiplyInto matvec inner dimension", x.size(),
                       a.cols());
    ARCHYTAS_DCHECK(&out != &x, "multiplyInto: destination aliases x");
    if (out.size() != a.rows())
        // archytas-analyzer: allow(hot-path-alloc) -- shape-change slow
        // path; steady-state calls reuse the destination's storage.
        out = Vector(a.rows());
    const simd::Ops &v = simd::ops();
    const double *xp = x.data().data();
    double *op = out.data().data();
    for (std::size_t r = 0; r < a.rows(); ++r)
        op[r] = v.dot(a.rowPtr(r), xp, a.cols());
}

void
subtractMultiply(Vector &out, const Matrix &a, const Vector &x)
{
    ARCHYTAS_CHECK_DIM("subtractMultiply inner dimension", x.size(),
                       a.cols());
    ARCHYTAS_CHECK_DIM("subtractMultiply rows", out.size(), a.rows());
    ARCHYTAS_DCHECK(&out != &x, "subtractMultiply: destination aliases x");
    const simd::Ops &v = simd::ops();
    const double *xp = x.data().data();
    double *op = out.data().data();
    for (std::size_t r = 0; r < a.rows(); ++r)
        op[r] -= v.dot(a.rowPtr(r), xp, a.cols());
}

void
subtractSymmetricProduct(Matrix &c, const Matrix &a, const Matrix &b)
{
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: b rows", b.rows(), n);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: b cols", b.cols(), k);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: c rows", c.rows(), n);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: c cols", c.cols(), n);
    ARCHYTAS_DCHECK(&c != &a && &c != &b,
                    "subtractSymmetricProduct: destination aliases an "
                    "operand");
    const simd::Ops &v = simd::ops();
    const auto rowUpdate = [&](std::size_t i) {
        // Upper triangle of row i plus the mirrored subtraction; the
        // mirror element c(j, i) is written only by the task owning row
        // i, so tasks write disjoint elements.
        const double *ai = a.rowPtr(i);
        double *ci = c.rowPtr(i);
        for (std::size_t j = i; j < n; ++j) {
            const double acc = v.dot(ai, b.rowPtr(j), k);
            ci[j] -= acc;
            if (j != i)
                c.rowPtr(j)[i] -= acc;
        }
    };
    // Half the n^2 k multiply-adds of the full product.
    if (n * n * k / 2 >= kParallelFlopThreshold)
        parallel::parallelFor(0, n, rowUpdate);
    else
        for (std::size_t i = 0; i < n; ++i)
            rowUpdate(i);
}

void
addOuterProductTransposed(Matrix &h, std::size_t r0, std::size_t c0,
                          const Matrix &a, const Matrix &b, double wt)
{
    ARCHYTAS_CHECK_DIM("addOuterProductTransposed: row counts", b.rows(),
                       a.rows());
    ARCHYTAS_DCHECK(r0 + a.cols() <= h.rows() && c0 + b.cols() <= h.cols(),
                    "addOuterProductTransposed: block [", r0, "+", a.cols(),
                    ", ", c0, "+", b.cols(), ") out of range for ",
                    h.rows(), "x", h.cols());
    addOuterProductTransposedImpl(h, r0, c0, a, b, wt);
}

void
addOuterProductTransposed(MatrixView &h, std::size_t r0, std::size_t c0,
                          const Matrix &a, const Matrix &b, double wt)
{
    ARCHYTAS_CHECK_DIM("addOuterProductTransposed: row counts", b.rows(),
                       a.rows());
    ARCHYTAS_DCHECK(r0 + a.cols() <= h.rows() && c0 + b.cols() <= h.cols(),
                    "addOuterProductTransposed: block [", r0, "+", a.cols(),
                    ", ", c0, "+", b.cols(), ") out of range for ",
                    h.rows(), "x", h.cols());
    addOuterProductTransposedImpl(h, r0, c0, a, b, wt);
}

void
subtractTransposeApplyScaled(Vector &g, std::size_t r0, const Matrix &a,
                             const double *x, double wt)
{
    ARCHYTAS_DCHECK(r0 + a.cols() <= g.size(),
                    "subtractTransposeApplyScaled: segment [", r0, "+",
                    a.cols(), ") out of range for size ", g.size());
    subtractTransposeApplyScaled(g.data().data(), g.size(), r0, a, x, wt);
}

void
subtractTransposeApplyScaled(double *g, std::size_t gsize, std::size_t r0,
                             const Matrix &a, const double *x, double wt)
{
    ARCHYTAS_DCHECK(r0 + a.cols() <= gsize,
                    "subtractTransposeApplyScaled: segment [", r0, "+",
                    a.cols(), ") out of range for size ", gsize);
    const std::size_t ac = a.cols();
    if (ac >= kNarrowSpan) {
        const simd::Ops &v = simd::ops();
        // Rank-1 form: g_seg -= (wt x[k]) a(k, :) streams a's rows.
        for (std::size_t k = 0; k < a.rows(); ++k)
            v.axpy(g + r0, -(wt * x[k]), a.rowPtr(k), ac);
        return;
    }
    for (std::size_t i = 0; i < ac; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < a.rows(); ++k)
            acc += a(k, i) * x[k];
        g[r0 + i] -= wt * acc;
    }
}

void
addInto(Matrix &dst, const MatrixView &src)
{
    ARCHYTAS_CHECK_DIM("addInto rows", src.rows(), dst.rows());
    ARCHYTAS_CHECK_DIM("addInto cols", src.cols(), dst.cols());
    // alpha = 1.0 makes the FMA product exact, so this merge is
    // bit-identical under every backend.
    simd::ops().axpy(dst.data().data(), 1.0, src.data(),
                     dst.rows() * dst.cols());
}

void
addInto(Vector &dst, const double *src, std::size_t n)
{
    ARCHYTAS_CHECK_DIM("addInto size", n, dst.size());
    simd::ops().axpy(dst.data().data(), 1.0, src, n);
}

} // namespace archytas::linalg
