#include "linalg/kernels.hh"

#include "common/contracts.hh"
#include "common/parallel.hh"

namespace archytas::linalg {

namespace {

/** Reuses the destination's storage when the shape already matches. */
void
resizeMatrix(Matrix &out, std::size_t rows, std::size_t cols)
{
    if (out.rows() == rows && out.cols() == cols) {
        out.setZero();
        return;
    }
    // archytas-analyzer: allow(hot-path-alloc) -- shape-change slow path:
    // allocates only when the destination does not already fit, which the
    // steady-state solver loop never hits.
    out = Matrix(rows, cols);
}

/** Work threshold (multiply-adds) below which threading cannot pay. */
constexpr std::size_t kParallelFlopThreshold = 64 * 1024;

} // namespace

void
multiplyInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    ARCHYTAS_CHECK_DIM("multiplyInto inner dimension", b.rows(), a.cols());
    ARCHYTAS_DCHECK(&out != &a && &out != &b,
                    "multiplyInto: destination aliases an operand");
    resizeMatrix(out, a.rows(), b.cols());
    const std::size_t inner = a.cols();
    const std::size_t cols = b.cols();
    const auto rowProduct = [&](std::size_t i) {
        // i-k-j order keeps the inner loop streaming over contiguous
        // rows; every out(i, j) is owned by exactly one task, so the
        // schedule cannot change the result.
        for (std::size_t k = 0; k < inner; ++k) {
            const double av = a(i, k);
            if (av == 0.0)
                continue;
            for (std::size_t j = 0; j < cols; ++j)
                out(i, j) += av * b(k, j);
        }
    };
    if (a.rows() * inner * cols >= kParallelFlopThreshold)
        parallel::parallelFor(0, a.rows(), rowProduct);
    else
        for (std::size_t i = 0; i < a.rows(); ++i)
            rowProduct(i);
}

void
multiplyInto(Vector &out, const Matrix &a, const Vector &x)
{
    ARCHYTAS_CHECK_DIM("multiplyInto matvec inner dimension", x.size(),
                       a.cols());
    ARCHYTAS_DCHECK(&out != &x, "multiplyInto: destination aliases x");
    if (out.size() != a.rows())
        // archytas-analyzer: allow(hot-path-alloc) -- shape-change slow
        // path; steady-state calls reuse the destination's storage.
        out = Vector(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c)
            acc += a(r, c) * x[c];
        out[r] = acc;
    }
}

void
subtractMultiply(Vector &out, const Matrix &a, const Vector &x)
{
    ARCHYTAS_CHECK_DIM("subtractMultiply inner dimension", x.size(),
                       a.cols());
    ARCHYTAS_CHECK_DIM("subtractMultiply rows", out.size(), a.rows());
    ARCHYTAS_DCHECK(&out != &x, "subtractMultiply: destination aliases x");
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c)
            acc += a(r, c) * x[c];
        out[r] -= acc;
    }
}

void
subtractSymmetricProduct(Matrix &c, const Matrix &a, const Matrix &b)
{
    const std::size_t n = a.rows();
    const std::size_t k = a.cols();
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: b rows", b.rows(), n);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: b cols", b.cols(), k);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: c rows", c.rows(), n);
    ARCHYTAS_CHECK_DIM("subtractSymmetricProduct: c cols", c.cols(), n);
    ARCHYTAS_DCHECK(&c != &a && &c != &b,
                    "subtractSymmetricProduct: destination aliases an "
                    "operand");
    const auto rowUpdate = [&](std::size_t i) {
        // Upper triangle of row i plus the mirrored subtraction; the
        // mirror element c(j, i) is written only by the task owning row
        // i, so tasks write disjoint elements.
        for (std::size_t j = i; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t t = 0; t < k; ++t)
                acc += a(i, t) * b(j, t);
            c(i, j) -= acc;
            if (j != i)
                c(j, i) -= acc;
        }
    };
    // Half the n^2 k multiply-adds of the full product.
    if (n * n * k / 2 >= kParallelFlopThreshold)
        parallel::parallelFor(0, n, rowUpdate);
    else
        for (std::size_t i = 0; i < n; ++i)
            rowUpdate(i);
}

void
addOuterProductTransposed(Matrix &h, std::size_t r0, std::size_t c0,
                          const Matrix &a, const Matrix &b, double wt)
{
    ARCHYTAS_CHECK_DIM("addOuterProductTransposed: row counts", b.rows(),
                       a.rows());
    ARCHYTAS_DCHECK(r0 + a.cols() <= h.rows() && c0 + b.cols() <= h.cols(),
                    "addOuterProductTransposed: block [", r0, "+", a.cols(),
                    ", ", c0, "+", b.cols(), ") out of range for ",
                    h.rows(), "x", h.cols());
    for (std::size_t i = 0; i < a.cols(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.rows(); ++k)
                acc += a(k, i) * b(k, j);
            h(r0 + i, c0 + j) += wt * acc;
        }
}

void
subtractTransposeApplyScaled(Vector &g, std::size_t r0, const Matrix &a,
                             const double *x, double wt)
{
    ARCHYTAS_DCHECK(r0 + a.cols() <= g.size(),
                    "subtractTransposeApplyScaled: segment [", r0, "+",
                    a.cols(), ") out of range for size ", g.size());
    for (std::size_t i = 0; i < a.cols(); ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < a.rows(); ++k)
            acc += a(k, i) * x[k];
        g[r0 + i] -= wt * acc;
    }
}

} // namespace archytas::linalg
