/**
 * @file
 * SIMD backend selection for the dense hot-path kernels
 * (docs/PERFORMANCE.md). The kernels in kernels.cc / cholesky.cc express
 * their inner loops through three contiguous-span primitives (dot, axpy,
 * elementwise multiply); this header publishes the primitive table and
 * the once-at-startup backend selection that fills it.
 *
 * Selection happens exactly once per process, from the `ARCHYTAS_SIMD`
 * environment variable ("auto"/unset, "avx2", "off"/"scalar") gated by a
 * runtime CPUID check -- callers never branch on the backend per call.
 *
 * Determinism contract: each backend's primitives use a fixed arithmetic
 * order that is independent of thread count and data values, so results
 * are bit-identical at any `ARCHYTAS_THREADS` *within* a backend. The
 * AVX2 reductions associate differently from the scalar ones, so
 * cross-backend comparisons are tolerance-based (see
 * tests/linalg/test_simd_backend.cc).
 */

#ifndef ARCHYTAS_LINALG_SIMD_HH
#define ARCHYTAS_LINALG_SIMD_HH

#include <cstddef>

namespace archytas::linalg::simd {

/** Kernel backend identities, in telemetry-gauge encoding order. */
enum class Backend
{
    kScalar = 0,
    kAvx2 = 1,
};

/**
 * Table of contiguous-span primitives the dense kernels are built from.
 * All pointers must be non-null; spans may alias only where a backend
 * documents it (axpy/mul allow out == a).
 */
struct Ops
{
    const char *name;
    /** sum_i a[i] * b[i], fixed reduction order per backend. */
    double (*dot)(const double *a, const double *b, std::size_t n);
    /** y[i] += alpha * x[i]. */
    void (*axpy)(double *y, double alpha, const double *x, std::size_t n);
    /** out[i] = a[i] * b[i]; out may alias a. */
    void (*mul)(double *out, const double *a, const double *b,
                std::size_t n);
};

/**
 * The active primitive table. First call performs the environment /
 * CPUID selection; every later call is one atomic load.
 */
const Ops &ops();

/** Backend behind ops(). */
Backend activeBackend();

/**
 * Table for a specific backend regardless of the active selection
 * (cross-backend tolerance tests). Requesting kAvx2 on a build or host
 * without AVX2 returns the scalar table.
 */
const Ops &opsFor(Backend backend);

/** Human-readable backend name ("scalar", "avx2"). */
const char *backendName(Backend backend);

/** True when this binary carries the AVX2 translation unit. */
bool avx2Compiled();

/** True when the running CPU supports AVX2+FMA (independent of build). */
bool avx2Supported();

/**
 * Test hook: force the active backend (same spirit as
 * parallel::setThreadCount). Requesting an unavailable backend falls
 * back to scalar; returns the backend actually installed. Not for
 * production code -- selection there is once at startup.
 */
Backend setBackendForTest(Backend backend);

} // namespace archytas::linalg::simd

#endif // ARCHYTAS_LINALG_SIMD_HH
