/**
 * @file
 * Schur-complement kernels. The paper distinguishes two flavours
 * (Sec. 3.2.2 / 3.2.3):
 *
 *  - D-type: V - W U^{-1} W^T where U is diagonal; used by the NLS solver's
 *    Schur elimination, where the point (landmark) block of the normal
 *    equations is (block-)diagonal.
 *  - M-type: A - Lambda M^{-1} Lambda^T where M is a general symmetric
 *    matrix; used by marginalization, where M is inverted via the blocked
 *    identity of Eq. 5 with a diagonal M11 block.
 */

#ifndef ARCHYTAS_LINALG_SCHUR_HH
#define ARCHYTAS_LINALG_SCHUR_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "linalg/matrix.hh"

namespace archytas::linalg {

/** Result of a D-type Schur elimination on [[U, W^T], [W, V]] x = [bx, by]. */
struct DSchurResult
{
    Matrix reduced;      //!< V - W U^{-1} W^T (the q x q reduced system).
    Vector reducedRhs;   //!< by - W U^{-1} bx.
};

/**
 * D-type Schur complement with diagonal U (Eq. 4 of the paper).
 *
 * @param u Diagonal p x p matrix (only the diagonal is read).
 * @param w q x p coupling block (the paper's W; X = W^T by symmetry).
 * @param v q x q block.
 * @param bx p-dimensional rhs segment.
 * @param by q-dimensional rhs segment.
 */
DSchurResult dSchur(const Matrix &u, const Matrix &w, const Matrix &v,
                    const Vector &bx, const Vector &by);

/**
 * Recovers the eliminated unknowns: x = U^{-1} (bx - W^T y) given the
 * solution y of the reduced system.
 */
Vector dSchurBackSubstitute(const Matrix &u, const Matrix &w,
                            const Vector &bx, const Vector &y);

/**
 * Block-sparse D-type Schur update keyed on feature-track support:
 * reduced -= W U^{-1} W^T and rhs -= W U^{-1} bx using only the keyframe
 * blocks each feature actually observes. The CSR-like inputs describe
 * W's column f as the block_dof-long segments
 * w_blocks[s * block_dof ..] for s in
 * [support_offsets[f], support_offsets[f+1]), each sitting at block row
 * support_blocks[s] * block_dof; block indices must be sorted and
 * unique per feature. Features are processed serially in a fixed order,
 * so the result is deterministic at any thread count, and each block
 * pair is written with the commuted product of its mirror, so the
 * subtraction stays exactly symmetric. The arena provides the single
 * per-call scaled-column scratch (no heap traffic).
 *
 * @param reduced   q x q accumulator (V with damping already applied).
 * @param rhs       q-dimensional accumulator (by).
 * @param bx        Feature-side rhs (m entries).
 * @param inv_u     Reciprocal damped pivots, m entries.
 * @param block_dof Rows per keyframe block (15 for the window solver).
 */
void subtractBlockSparseSchur(
    Matrix &reduced, Vector &rhs, const Vector &bx, const double *inv_u,
    std::size_t block_dof,
    const std::vector<std::uint32_t> &support_offsets,
    const std::vector<std::uint32_t> &support_blocks,
    const std::vector<double> &w_blocks, common::Arena &arena);

/** Result of M-type Schur (marginalization prior, Sec. 3.1 step 3). */
struct MSchurResult
{
    Matrix prior;      //!< Hp = A - Lambda M^{-1} Lambda^T.
    Vector priorRhs;   //!< rp = br - Lambda M^{-1} bm.
};

/**
 * M-type Schur complement: marginalizes the M block of
 * H = [[M, Lambda^T], [Lambda, A]], b = [bm, br].
 *
 * @param m            Symmetric positive-definite block to marginalize.
 * @param lambda       Coupling block (rows match A, cols match M).
 * @param a            Retained block.
 * @param bm           rhs segment of the marginalized states.
 * @param br           rhs segment of the retained states.
 * @param diag_m11     Dimension of the leading diagonal sub-block of M
 *                     used for the blocked inverse of Eq. 5; 0 selects a
 *                     plain Cholesky inverse.
 */
MSchurResult mSchur(const Matrix &m, const Matrix &lambda, const Matrix &a,
                    const Vector &bm, const Vector &br,
                    std::size_t diag_m11 = 0);

/**
 * Blocked inverse of Eq. 5: inverts M = [[M11, M12], [M21, M22]] where the
 * leading p x p block M11 is diagonal. Used to show the cost advantage the
 * paper's M-DFG builder exploits.
 */
Matrix blockedInverseDiagonalM11(const Matrix &m, std::size_t p);

} // namespace archytas::linalg

#endif // ARCHYTAS_LINALG_SCHUR_HH
