/**
 * @file
 * The paper's domain-specific compacted layout for the S matrix
 * (Sec. 3.3). S is the kb x kb symmetric linear-system parameter matrix of
 * a sliding window with b IMU observations (keyframes) and k states per
 * observation. S = Sc + Si, where:
 *
 *  - Si (IMU contribution) is symmetric block-tridiagonal: non-zeros only
 *    in the diagonal and sub/super-diagonal k x k blocks, because an IMU
 *    observation relates only adjacent keyframes.
 *  - Sc (camera contribution) is non-zero only in a 6 x 6 sub-block of
 *    every k x k block (the 6 pose DoF), and is symmetric.
 *
 * Archytas therefore stores Si's diagonal + super-diagonal blocks and a
 * symmetry-packed compaction of Sc, cutting storage from k^2 b^2 doubles
 * to about 18 b^2 + 2 b k^2 (78% saving at k = b = 15, and 17.8% below a
 * CSR encoding of the same matrix).
 */

#ifndef ARCHYTAS_LINALG_SMATRIX_HH
#define ARCHYTAS_LINALG_SMATRIX_HH

#include <cstddef>
#include <vector>

#include "linalg/matrix.hh"

namespace archytas::linalg {

/** Compacted storage for S = Sc + Si. */
class CompactSMatrix
{
  public:
    /**
     * @param k States per IMU observation (15 in the paper's setup).
     * @param b Number of IMU observations in the sliding window.
     */
    CompactSMatrix(std::size_t k, std::size_t b);

    std::size_t k() const { return k_; }
    std::size_t b() const { return b_; }
    /** Full (uncompacted) dimension k*b. */
    std::size_t dim() const { return k_ * b_; }

    /**
     * Sets the IMU diagonal block i (a symmetric k x k matrix); only the
     * lower triangle is read, symmetry is enforced.
     */
    void setImuDiagBlock(std::size_t i, const Matrix &block);

    /** Sets the IMU super-diagonal block coupling keyframes i and i+1. */
    void setImuOffDiagBlock(std::size_t i, const Matrix &block);

    /**
     * Sets the camera 6 x 6 contribution coupling the pose DoF of
     * keyframes i and j (i <= j; the mirrored block follows by symmetry).
     */
    void setCameraBlock(std::size_t i, std::size_t j, const Matrix &block);

    /** Adds into the camera block instead of overwriting. */
    void addCameraBlock(std::size_t i, std::size_t j, const Matrix &block);

    /** Element access on the logical full matrix. */
    double at(std::size_t r, std::size_t c) const;

    /** Reconstructs the dense kb x kb S. */
    Matrix toDense() const;

    /** y = S x computed directly on the compact layout. */
    Vector apply(const Vector &x) const;

    /** Doubles actually stored by this layout. */
    std::size_t storageDoubles() const;

    /** The paper's closed-form approximation 18 b^2 + 2 b k^2. */
    static std::size_t paperModelDoubles(std::size_t k, std::size_t b);

    /** Dense storage: (kb)^2 doubles. */
    static std::size_t denseDoubles(std::size_t k, std::size_t b);

    /** Symmetric-half dense storage: kb (kb + 1) / 2 doubles. */
    static std::size_t symmetricDenseDoubles(std::size_t k, std::size_t b);

  private:
    /** Index into the packed lower triangle of the 6b x 6b Sc. */
    std::size_t scIndex(std::size_t r, std::size_t c) const;

    std::size_t k_;
    std::size_t b_;
    /** b diagonal k x k blocks of Si, stored dense. */
    std::vector<Matrix> imu_diag_;
    /** b-1 super-diagonal k x k blocks of Si. */
    std::vector<Matrix> imu_offdiag_;
    /** Packed lower triangle of the compacted 6b x 6b Sc. */
    std::vector<double> cam_packed_;
};

} // namespace archytas::linalg

#endif // ARCHYTAS_LINALG_SMATRIX_HH
