/**
 * @file
 * Asynchronous host-link transactions over the service's simulated
 * timeline, layered on the PR-2 deadline / bounded-retry / exponential-
 * backoff machinery (hw/host_interface.hh). The synchronous path blocks
 * the caller for the transaction's whole duration; the async path splits
 * the same transaction into two halves so a multi-session service can
 * overlap link transfers with other sessions' work:
 *
 *  1. begin(): computes the transaction outcome -- words, status,
 *     attempt count, and the full AttemptSchedule timeline. This is a
 *     pure function of the workload and the fault plan (via
 *     hw::planAttempts, the exact code the synchronous path runs), so
 *     it can execute on a pool worker inside the session's numeric
 *     step without touching shared state.
 *  2. AsyncTransaction: places the schedule at an issue time on the
 *     simulated timeline and answers time-indexed queries (phase,
 *     attempts elapsed, completion). The service's serial scheduling
 *     phase does this placement, which keeps the timeline deterministic
 *     regardless of how the numeric steps were interleaved.
 *
 * Both halves replay the identical attempt schedule, so a fault plan
 * produces the same retries, the same status, and the same total link
 * time whether a window is driven synchronously or asynchronously.
 */

#ifndef ARCHYTAS_SERVICE_ASYNC_LINK_HH
#define ARCHYTAS_SERVICE_ASYNC_LINK_HH

#include "common/fault.hh"
#include "hw/host_interface.hh"
#include "slam/state.hh"

namespace archytas::service {

/** A transaction whose outcome is known but whose placement on the
 *  simulated timeline is still pending. */
struct PendingTransaction
{
    hw::HostTransaction txn;        //!< Words, status, total time.
    hw::AttemptSchedule schedule;   //!< Attempt-by-attempt timeline.
};

/** Where an in-flight transaction is at a queried simulated time. */
enum class LinkPhase
{
    Transfer,   //!< A DMA attempt is on the wire.
    Backoff,    //!< Waiting out the backoff before the next attempt.
    Done,       //!< Completed (successfully or budget-exhausted).
};

/** A pending transaction placed at an issue time. */
class AsyncTransaction
{
  public:
    AsyncTransaction() = default;
    AsyncTransaction(PendingTransaction pending, double issue_s);

    double issueTime() const { return issue_s_; }
    /** Absolute completion time: issue + attempts + backoffs. */
    double completionTime() const
    {
        return issue_s_ + pending_.schedule.total_seconds;
    }
    [[nodiscard]] hw::TransactionStatus status() const
    {
        return pending_.txn.status;
    }
    std::size_t attempts() const { return pending_.txn.attempts; }
    const hw::HostTransaction &transaction() const { return pending_.txn; }
    const hw::AttemptSchedule &schedule() const
    {
        return pending_.schedule;
    }

    bool doneBy(double t) const { return t >= completionTime(); }
    /** Phase of the link at simulated time t (>= issue time). */
    LinkPhase phaseAt(double t) const;
    /** Attempts fully elapsed (success or abandonment) by time t. */
    std::size_t attemptsCompletedBy(double t) const;

  private:
    PendingTransaction pending_;
    double issue_s_ = 0.0;
};

/**
 * Issues asynchronous window transactions for one session's host link.
 * Metric accounting (host.* counters) matches the synchronous
 * HostInterface path exactly, because begin() runs it.
 */
class AsyncHostLink
{
  public:
    explicit AsyncHostLink(const hw::HostLink &link = {});

    /**
     * Starts a window transaction: performs the synchronous accounting
     * (status, words, host.* counters) and computes the attempt
     * timeline for later placement. Deterministic in the fault plan.
     */
    [[nodiscard]] PendingTransaction
    begin(const slam::WindowWorkload &workload, bool config_changed,
          std::size_t window_index, const FaultPlan &faults) const;

    const hw::HostInterface &host() const { return host_; }

  private:
    hw::HostInterface host_;
};

} // namespace archytas::service

#endif // ARCHYTAS_SERVICE_ASYNC_LINK_HH
