#include "service/accel_pool.hh"

#include <algorithm>

#include "common/contracts.hh"

namespace archytas::service {

AcceleratorPool::AcceleratorPool(std::size_t slots) : free_at_(slots, 0.0)
{
    ARCHYTAS_ASSERT(slots > 0, "accelerator pool needs at least 1 slot");
}

SlotGrant
AcceleratorPool::acquire(double request_s, double busy_s)
{
    ARCHYTAS_DCHECK(busy_s >= 0.0, "negative busy time");
    // Earliest-free slot, lowest index on ties: min_element scans in
    // index order and keeps the first minimum, which is exactly the
    // deterministic tie-break we document.
    const auto it = std::min_element(free_at_.begin(), free_at_.end());
    const auto slot = static_cast<std::size_t>(it - free_at_.begin());
    SlotGrant grant;
    grant.slot = slot;
    grant.start_s = std::max(request_s, *it);
    grant.wait_s = grant.start_s - request_s;
    free_at_[slot] = grant.start_s + busy_s;
    return grant;
}

double
AcceleratorPool::slotFreeTime(std::size_t slot) const
{
    ARCHYTAS_CHECK_BOUNDS("AcceleratorPool::slotFreeTime", slot,
                          free_at_.size());
    return free_at_[slot];
}

AdmissionController::AdmissionController(std::size_t max_active,
                                         std::size_t max_queued)
    : max_active_(max_active), max_queued_(max_queued),
      tokens_(max_active, 0.0)
{
    ARCHYTAS_ASSERT(max_active > 0,
                    "admission needs at least 1 active session");
}

bool
AdmissionController::enqueue(std::size_t session, double arrival_s)
{
    // Bounded waiting room: announcements outstanding = active sessions
    // plus the queue; the first max_active_ queued announcements are
    // covered by admission capacity, the rest occupy the room.
    if (max_queued_ > 0 &&
        active_ + queue_.size() >= max_active_ + max_queued_) {
        ++rejected_;
        return false;
    }
    Admission a;
    a.session = session;
    a.arrival_s = arrival_s;
    const auto pos = std::upper_bound(
        queue_.begin(), queue_.end(), a,
        [](const Admission &lhs, const Admission &rhs) {
            if (lhs.arrival_s != rhs.arrival_s)
                return lhs.arrival_s < rhs.arrival_s;
            return lhs.session < rhs.session;
        });
    queue_.insert(pos, a);
    return true;
}

std::optional<AdmissionController::Admission>
AdmissionController::admitNext()
{
    if (queue_.empty() || tokens_.empty())
        return std::nullopt;
    // Earliest-freed capacity token first; FIFO over arrivals.
    const auto it = std::min_element(tokens_.begin(), tokens_.end());
    Admission a = queue_.front();
    queue_.pop_front();
    a.admit_s = std::max(a.arrival_s, *it);
    tokens_.erase(it);
    ++active_;
    return a;
}

void
AdmissionController::release(double completion_s)
{
    ARCHYTAS_ASSERT(active_ > 0, "release without an active session");
    --active_;
    tokens_.push_back(completion_s);
    ARCHYTAS_DCHECK(tokens_.size() + active_ == max_active_,
                    "admission token accounting out of balance");
}

} // namespace archytas::service
