/**
 * @file
 * The multi-robot localization service (docs/SERVICE.md): multiplexes N
 * concurrent robot sessions over one process, one compute pool, and a
 * shared set of simulated accelerators. The run loop alternates two
 * phases per round:
 *
 *  - a parallel *numeric* phase: every active session steps one frame
 *    via parallel::runTasks (one task per session -- the session
 *    shard). Sessions own all their mutable state, and nested parallel
 *    regions run inline, so per-session numerics are bit-identical to
 *    a serial run at any ARCHYTAS_THREADS;
 *  - a serial *scheduling* phase: the stepped frames are placed on the
 *    simulated timeline in (request time, session id) order --
 *    admission waits, async host-link transactions, accelerator-slot
 *    queueing -- producing the latency distribution. Scheduling
 *    consumes only numbers already fixed by the numeric phase, so it
 *    can never feed back into the trajectories.
 *
 * That phase split is the service's determinism contract: thread
 * interleaving can change *when* numeric work happens on the host, but
 * neither the trajectories nor the simulated timeline.
 */

#ifndef ARCHYTAS_SERVICE_SERVICE_HH
#define ARCHYTAS_SERVICE_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/accel_pool.hh"
#include "service/session.hh"
#include "service/slo.hh"

namespace archytas::service {

/** Options of the localization service. */
struct ServiceOptions
{
    /** Simulated accelerator instances shared by all sessions. */
    std::size_t accelerator_slots = 2;
    /** Session admission cap (sessions live at once). */
    std::size_t max_active_sessions = 4;
    /** Seed for per-session RNG streams. */
    std::uint64_t seed = 2021;
    /**
     * Latency multiplier for windows solved by the software fallback
     * (no accelerator slot involved): the host CPU solve is slower than
     * the datapath by roughly this factor (docs/SERVICE.md).
     */
    double software_fallback_factor = 4.0;
    /**
     * Bounded admission waiting room: arrivals announced beyond
     * max_active_sessions + max_queued_sessions outstanding are
     * rejected (accel_pool.hh). 0 keeps the room unbounded -- the
     * pre-existing behavior.
     */
    std::size_t max_queued_sessions = 0;
    /**
     * Service-level objectives evaluated during the scheduling phase
     * (slo.hh); the default (empty) spec disables evaluation.
     */
    SloSpec slo;
    /**
     * When non-empty, every session's flight ring is dumped here at the
     * end of run() (trigger "on_demand") -- the --flight-dump path.
     * Trigger-driven dumps use telemetry::postmortemDir() regardless.
     */
    std::string flight_dump_dir;
};

/** One optimized window placed on the simulated timeline. */
struct FrameTrace
{
    std::size_t session = 0;
    std::size_t frame = 0;           //!< Frame index within the session.
    double available_s = 0.0;        //!< Frame arrival on the timeline.
    double request_s = 0.0;          //!< After the session's backlog.
    double admission_wait_s = 0.0;   //!< Accelerator-slot queueing delay.
    double link_s = 0.0;             //!< Host-link transaction time.
    double compute_s = 0.0;          //!< Window solve time.
    double complete_s = 0.0;
    bool hw_solved = false;          //!< False: software fallback.

    /** Open-loop frame latency: completion minus availability. */
    double latency_s() const { return complete_s - available_s; }
};

/** Per-session outcome. */
struct SessionReport
{
    std::size_t id = 0;
    std::string label;
    double arrival_s = 0.0;
    double admit_s = 0.0;        //!< When admission granted capacity.
    double completion_s = 0.0;   //!< Last frame's completion.
    std::size_t frames = 0;
    std::size_t degraded_frames = 0;
    double rmse_m = 0.0;         //!< Position RMSE over the trajectory.
    double max_error_m = 0.0;
    hw::HwSolveStats hw;         //!< The session's solver statistics.
    /** Turned away by the bounded waiting room; never ran a frame. */
    bool rejected = false;
};

/** Aggregate outcome of one service run. */
struct ServiceReport
{
    std::vector<SessionReport> sessions;
    std::vector<FrameTrace> traces;   //!< One per optimized window.
    double makespan_s = 0.0;          //!< Last completion on the timeline.
    /** One verdict per enabled SLO objective (slo.hh); bit-identical
     *  at any thread count -- the inputs are all simulated-timeline. */
    std::vector<SloVerdict> slo;

    /** Sessions completed per simulated second. */
    double sessionsPerSecond() const;
    /** Frame-latency percentile (exact, from the traces) in ms. */
    double latencyPercentileMs(double p) const;
    /** True when every enabled SLO objective passed (vacuously true). */
    bool sloPass() const;
};

/**
 * The service: add sessions, then run them all to completion. Both the
 * trajectories and the simulated timeline are deterministic in the
 * session configurations alone.
 */
class LocalizationService
{
  public:
    explicit LocalizationService(const ServiceOptions &options = {});

    /** Registers a session; returns its id (dense, starting at 0). */
    std::size_t addSession(const SessionConfig &config);

    std::size_t sessionCount() const { return sessions_.size(); }
    const RobotSession &session(std::size_t id) const;

    /** Runs every session to completion. Call once. */
    ServiceReport run();

  private:
    ServiceOptions options_;
    std::vector<std::unique_ptr<RobotSession>> sessions_;
    bool ran_ = false;
};

} // namespace archytas::service

#endif // ARCHYTAS_SERVICE_SERVICE_HH
