/**
 * @file
 * The shared simulated-accelerator pool and the session admission
 * controller (docs/SERVICE.md). Both are discrete-event models over the
 * service's simulated timeline: a resource is a set of capacity tokens,
 * each carrying the time it becomes free; a grant takes the
 * earliest-free token (ties broken by lowest index) and starts at
 * max(request time, token free time). Grants are issued in the order
 * the service presents requests -- sorted by (request time, session id)
 * -- so scheduling is deterministically fair: no wall-clock reads, no
 * dependence on thread interleaving, identical timelines on every run.
 */

#ifndef ARCHYTAS_SERVICE_ACCEL_POOL_HH
#define ARCHYTAS_SERVICE_ACCEL_POOL_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace archytas::service {

/** One granted reservation on a pool slot. */
struct SlotGrant
{
    std::size_t slot = 0;
    double start_s = 0.0;   //!< When service begins.
    double wait_s = 0.0;    //!< start - request time (queueing delay).
};

/**
 * N simulated accelerator instances shared by every session. Windows
 * queue for the earliest-free slot; the busy time of a grant is the
 * window's link + compute time, so contention surfaces as queueing
 * delay in the frame-latency distribution.
 */
class AcceleratorPool
{
  public:
    explicit AcceleratorPool(std::size_t slots);

    std::size_t slots() const { return free_at_.size(); }

    /**
     * Grants the earliest-free slot to a request arriving at request_s
     * that will occupy it for busy_s. Deterministic: ties go to the
     * lowest slot index.
     */
    SlotGrant acquire(double request_s, double busy_s);

    double slotFreeTime(std::size_t slot) const;

  private:
    std::vector<double> free_at_;
};

/**
 * Session-granularity admission control: at most max_active sessions
 * are live at once; later arrivals queue FIFO (ties broken by session
 * id) and are admitted as finishing sessions return capacity.
 *
 * With max_queued > 0 the waiting room is bounded: a session announced
 * while max_active + max_queued announcements are already outstanding
 * is rejected outright (enqueue returns false). The bound is measured
 * at announcement time -- announce arrivals in (arrival, id) order --
 * which keeps rejection a pure function of the arrival schedule,
 * independent of completion times, so the timeline stays deterministic
 * (the model is conservative: it never credits capacity a completion
 * might have freed before the arrival).
 */
class AdmissionController
{
  public:
    explicit AdmissionController(std::size_t max_active,
                                 std::size_t max_queued = 0);

    /** One admission decision. */
    struct Admission
    {
        std::size_t session = 0;
        double arrival_s = 0.0;
        double admit_s = 0.0;   //!< max(arrival, capacity free time).

        double wait_s() const { return admit_s - arrival_s; }
    };

    /**
     * Queues a session arrival (kept sorted by arrival, then id).
     * Returns false -- and queues nothing -- when the bounded waiting
     * room is full (see the class comment); always true when unbounded.
     */
    bool enqueue(std::size_t session, double arrival_s);

    /**
     * Admits the head of the queue if capacity remains; consumes one
     * capacity token until the matching release(). Returns nothing when
     * the queue is empty or every token is in use.
     */
    std::optional<Admission> admitNext();

    /** Returns capacity freed by a session completing at completion_s. */
    void release(double completion_s);

    std::size_t active() const { return active_; }
    std::size_t queued() const { return queue_.size(); }
    /** Sessions turned away by the bounded waiting room. */
    std::size_t rejected() const { return rejected_; }

  private:
    std::size_t max_active_;
    std::size_t max_queued_;   //!< 0 = unbounded waiting room.
    std::size_t active_ = 0;
    std::size_t rejected_ = 0;
    /** Free capacity tokens; value = time the capacity became free. */
    std::vector<double> tokens_;
    std::deque<Admission> queue_;   //!< Sorted by (arrival_s, session).
};

} // namespace archytas::service

#endif // ARCHYTAS_SERVICE_ACCEL_POOL_HH
