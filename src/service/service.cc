#include "service/service.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"

namespace archytas::service {

namespace {

/** Finalizes a session's report entry when its last frame completes. */
void
finishSession(SessionReport &sr, const RobotSession &session,
              double completion_s)
{
    sr.completion_s = completion_s;
    sr.frames = session.results().size();
    double sq = 0.0;
    for (const slam::FrameResult &r : session.results()) {
        sq += r.position_error * r.position_error;
        sr.max_error_m = std::max(sr.max_error_m, r.position_error);
        if (r.health.degraded)
            ++sr.degraded_frames;
    }
    sr.rmse_m = sr.frames
                    ? std::sqrt(sq / static_cast<double>(sr.frames))
                    : 0.0;
    sr.hw = session.solver().stats();
    ARCHYTAS_COUNT_ADD("service.sessions_completed", 1);
    ARCHYTAS_INSTANT("service", "service.session_done",
                     {"session", static_cast<double>(sr.id)},
                     {"frames", static_cast<double>(sr.frames)});
}

} // namespace

double
ServiceReport::sessionsPerSecond() const
{
    if (sessions.empty() || makespan_s <= 0.0)
        return 0.0;
    return static_cast<double>(sessions.size()) / makespan_s;
}

double
ServiceReport::latencyPercentileMs(double p) const
{
    std::vector<double> ms;
    ms.reserve(traces.size());
    for (const FrameTrace &t : traces)
        ms.push_back(t.latency_s() * 1e3);
    return percentile(std::move(ms), p);
}

bool
ServiceReport::sloPass() const
{
    for (const SloVerdict &v : slo) {
        if (!v.pass())
            return false;
    }
    return true;
}

LocalizationService::LocalizationService(const ServiceOptions &options)
    : options_(options)
{
    ARCHYTAS_ASSERT(options.accelerator_slots > 0 &&
                        options.max_active_sessions > 0,
                    "bad service options");
    ARCHYTAS_ASSERT(options.software_fallback_factor >= 1.0,
                    "software fallback cannot be faster than hardware");
}

std::size_t
LocalizationService::addSession(const SessionConfig &config)
{
    ARCHYTAS_ASSERT(!ran_, "addSession after run()");
    const std::size_t id = sessions_.size();
    sessions_.push_back(
        std::make_unique<RobotSession>(id, config, options_.seed));
    return id;
}

const RobotSession &
LocalizationService::session(std::size_t id) const
{
    ARCHYTAS_CHECK_BOUNDS("LocalizationService::session", id,
                          sessions_.size());
    return *sessions_[id];
}

ServiceReport
LocalizationService::run()
{
    ARCHYTAS_ASSERT(!ran_, "LocalizationService::run called twice");
    ran_ = true;

    AdmissionController admission(options_.max_active_sessions,
                                  options_.max_queued_sessions);
    AcceleratorPool pool(options_.accelerator_slots);
    SloEngine slo_engine(options_.slo);

    ServiceReport report;
    report.sessions.resize(sessions_.size());
    for (std::size_t id = 0; id < sessions_.size(); ++id) {
        SessionReport &sr = report.sessions[id];
        sr.id = id;
        sr.label = sessions_[id]->context().label;
        sr.arrival_s = sessions_[id]->config().arrival_s;
    }

    // Announce arrivals in (arrival, id) order so the bounded waiting
    // room sees them the way the timeline would (accel_pool.hh).
    std::vector<std::size_t> announce(sessions_.size());
    for (std::size_t i = 0; i < announce.size(); ++i)
        announce[i] = i;
    std::sort(announce.begin(), announce.end(),
              [&](std::size_t a, std::size_t b) {
                  const double aa = report.sessions[a].arrival_s;
                  const double ab = report.sessions[b].arrival_s;
                  if (aa != ab)
                      return aa < ab;
                  return a < b;
              });
    for (const std::size_t id : announce) {
        SessionReport &sr = report.sessions[id];
        if (admission.enqueue(id, sr.arrival_s))
            continue;
        sr.rejected = true;
        slo_engine.recordAdmission(true);
        ARCHYTAS_COUNT_ADD("service.admission_rejects", 1);
        ARCHYTAS_INSTANT("service", "service.session_rejected",
                         {"session", static_cast<double>(id)},
                         {"arrival_s", sr.arrival_s});
#if ARCHYTAS_TELEMETRY_ENABLED
        if (telemetry::enabled()) {
            sessions_[id]->flight().record(
                telemetry::FlightKind::Fault, "admission_reject", 0);
            sessions_[id]->dumpFlight("admission_reject");
        }
#endif
    }

    /** A session holding an admission token. */
    struct Active
    {
        std::size_t id = 0;
        double admit_s = 0.0;
        /** Completion of the session's previous frame (its own frames
         *  are processed in order). */
        double prev_complete_s = 0.0;
    };
    std::vector<Active> active;

    const auto admitAvailable = [&]() {
        while (const auto a = admission.admitNext()) {
            active.push_back({a->session, a->admit_s, a->admit_s});
            report.sessions[a->session].admit_s = a->admit_s;
            slo_engine.recordAdmission(false);
            ARCHYTAS_COUNT_ADD("service.sessions_started", 1);
            ARCHYTAS_HIST_RECORD("service.admission_wait_ms",
                                 a->wait_s() * 1e3);
            ARCHYTAS_INSTANT(
                "service", "service.session_admitted",
                {"session", static_cast<double>(a->session)},
                {"wait_ms", a->wait_s() * 1e3});
        }
    };
    admitAvailable();

    std::vector<SessionStep> steps;
    while (!active.empty()) {
        ARCHYTAS_GAUGE_SET("service.active_sessions",
                           static_cast<double>(active.size()));

        // Parallel numeric phase: one pool task per active session (the
        // session shard). Sessions write disjoint state, and nested
        // parallel regions run inline, so the trajectories cannot
        // depend on the interleaving.
        steps.assign(active.size(), SessionStep{});
        parallel::runTasks(active.size(), [&](std::size_t i) {
            steps[i] = sessions_[active[i].id]->stepFrame();
        });

        // Serial scheduling phase: place the stepped frames on the
        // simulated timeline in (request time, session id) order so
        // slot grants are deterministically fair.
        const auto requestTime = [&](std::size_t i) {
            return std::max(active[i].admit_s + steps[i].frame_offset_s,
                            active[i].prev_complete_s);
        };
        std::vector<std::size_t> order(active.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double ra = requestTime(a);
                      const double rb = requestTime(b);
                      if (ra != rb)
                          return ra < rb;
                      return active[a].id < active[b].id;
                  });

        for (const std::size_t i : order) {
            Active &s = active[i];
            const SessionStep &step = steps[i];
            RobotSession &session = *sessions_[s.id];
            const auto frame_index =
                static_cast<std::uint32_t>(session.frameIndex() - 1);
            // Same causal identity the numeric phase used, so the
            // scheduling span lands on the session's track and the flow
            // arc opened in stepFrame closes here.
            ARCHYTAS_TRACE_SCOPE(static_cast<std::uint32_t>(s.id),
                                 frame_index, &session.flight());
            ARCHYTAS_SPAN("service", "service.schedule_frame");
            const double available = s.admit_s + step.frame_offset_s;
            const double request =
                std::max(available, s.prev_complete_s);
            double complete = request;

            if (step.has_transaction) {
                // Optimized window: async host-link transaction, then
                // the solve -- on a shared accelerator slot, or on the
                // host CPU after a DeadlineExceeded fallback.
                const AsyncTransaction txn(step.transaction, request);
                const double link_s =
                    txn.completionTime() - txn.issueTime();
                const bool hw_solved =
                    txn.status() !=
                    hw::TransactionStatus::DeadlineExceeded;
                const hw::Accelerator &accel =
                    session.solver().accelerator();
                const double compute_s =
                    accel.windowTiming(step.frame.workload,
                                       step.frame.lm_report.iterations)
                        .totalMs(accel.constants()) *
                    1e-3;

                FrameTrace trace;
                trace.session = s.id;
                trace.frame = frame_index;
                trace.available_s = available;
                trace.request_s = request;
                trace.link_s = link_s;
                trace.hw_solved = hw_solved;
                if (hw_solved) {
                    const SlotGrant grant =
                        pool.acquire(request, link_s + compute_s);
                    trace.admission_wait_s = grant.wait_s;
                    trace.compute_s = compute_s;
                    complete = grant.start_s + link_s + compute_s;
                    ARCHYTAS_INSTANT(
                        "service", "service.slot_grant",
                        {"slot", static_cast<double>(grant.slot)},
                        {"wait_ms", grant.wait_s * 1e3});
                } else {
                    // The link burned its deadline + backoff budget;
                    // the solve runs on the host CPU -- slower, but it
                    // queues for no slot.
                    trace.compute_s =
                        compute_s * options_.software_fallback_factor;
                    complete = request + link_s + trace.compute_s;
                }
                trace.complete_s = complete;
                ARCHYTAS_HIST_RECORD("service.frame_latency_ms",
                                     trace.latency_s() * 1e3);
                ARCHYTAS_HIST_RECORD("service.slot_wait_ms",
                                     trace.admission_wait_s * 1e3);
                slo_engine.recordFrame(true, trace.latency_s() * 1e3,
                                       hw_solved,
                                       step.frame.health.solver_diverged);
                report.traces.push_back(trace);
            } else {
                slo_engine.recordFrame(
                    false, 0.0, true,
                    step.frame.health.solver_diverged);
            }
            s.prev_complete_s = complete;
            ARCHYTAS_COUNT_ADD("service.frames", 1);
            ARCHYTAS_FLOW_END("service", "trace.frame");
            ARCHYTAS_COUNT_ADD("trace.frames_linked", 1);
        }

        // Retire finished sessions -- releasing capacity in completion
        // order so freed tokens carry the right timestamps -- then
        // admit queued arrivals into the freed capacity.
        std::vector<Active> still;
        still.reserve(active.size());
        std::vector<std::pair<double, std::size_t>> finished;
        for (const Active &s : active) {
            if (sessions_[s.id]->finished())
                finished.emplace_back(s.prev_complete_s, s.id);
            else
                still.push_back(s);
        }
        std::sort(finished.begin(), finished.end());
        for (const auto &[completion_s, id] : finished) {
            finishSession(report.sessions[id], *sessions_[id],
                          completion_s);
            admission.release(completion_s);
            report.makespan_s =
                std::max(report.makespan_s, completion_s);
        }
        active = std::move(still);
        admitAvailable();
    }

    report.slo = slo_engine.verdicts();
    slo_engine.publish();

    // On-demand dump: one bundle per session, rejected ones included
    // (their rings hold only the rejection marker).
    if (!options_.flight_dump_dir.empty()) {
        for (const auto &session : sessions_)
            session->dumpFlight("on_demand", options_.flight_dump_dir);
    }
    return report;
}

} // namespace archytas::service
