#include "service/session.hh"

#include <cstdio>
#include <utility>

#include "common/contracts.hh"
#include "common/telemetry.hh"
#include "dataset/corruptor.hh"

namespace archytas::service {

namespace {

dataset::Sequence
makeSequence(const SessionConfig &config)
{
    return config.euroc_like
               ? dataset::makeEurocLikeSequence(config.sequence)
               : dataset::makeKittiLikeSequence(config.sequence);
}

std::string
makeLabel(const SessionConfig &config, std::size_t id)
{
    if (!config.name.empty())
        return config.name;
    char buf[32];
    std::snprintf(buf, sizeof buf, "session-%02zu", id);
    return buf;
}

/**
 * Independent per-session stream: a fixed odd multiplier spreads the
 * session id across the seed space (splitmix-style), so neighbouring
 * ids never yield correlated streams.
 */
Rng
makeSessionRng(std::uint64_t service_seed, std::size_t id)
{
    return Rng(service_seed ^
               (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) +
                                         1)));
}

std::array<hw::HwConfig, runtime::kMaxIterations>
gatedConfigsFor(const hw::HwConfig &built)
{
    // Gating does not change the datapath arithmetic, only the timing /
    // power model, so running every Iter level on the built design is a
    // valid (conservative) configuration set for a session.
    std::array<hw::HwConfig, runtime::kMaxIterations> configs;
    configs.fill(built);
    return configs;
}

} // namespace

RobotSession::RobotSession(std::size_t id, const SessionConfig &config,
                           std::uint64_t service_seed)
    : config_(config),
      ctx_{id, makeLabel(config, id), config.faults,
           makeSessionRng(service_seed, id)},
      sequence_(makeSequence(config)),
      frames_(config.faults.empty()
                  ? sequence_.frames()
                  : dataset::corruptFrames(sequence_, config.faults)),
      estimator_(sequence_.camera(), config.estimator),
      solver_(config.accel, config.link, config.faults),
      controller_(config.iter_table, gatedConfigsFor(config.accel),
                  config.accel),
      link_(config.link)
{
    ARCHYTAS_ASSERT(!frames_.empty(), "session with an empty sequence");
    results_.reserve(frames_.size());

    if (config_.use_runtime_controller) {
        estimator_.setIterationController([this](std::size_t features) {
            return controller_.onWindow(features).iterations;
        });
    }
    estimator_.setWindowSolver(
        [this](slam::WindowProblem &problem,
               const slam::LmOptions &options,
               slam::HealthReport &health) {
            return solveWindowAsync(problem, options, health);
        });
}

slam::LmReport
RobotSession::solveWindowAsync(slam::WindowProblem &problem,
                               const slam::LmOptions &options,
                               slam::HealthReport &health)
{
    slam::WindowWorkload workload;
    workload.keyframes = problem.keyframeCount();
    workload.features = problem.featureCount();
    workload.observations = problem.observationCount();

    const std::size_t window = window_index_++;
    const bool config_changed = !config_sent_;
    config_sent_ = true;

    // Issue the transaction asynchronously: the outcome is computed
    // here (pure in the fault plan, so safe on a pool worker); its
    // placement on the service timeline happens in the serial
    // scheduling phase.
    pending_ = link_.begin(workload, config_changed, window, ctx_.faults);
    has_pending_ = true;
    pending_window_ = window;

    return solver_.completeWindow(problem, options, health, pending_.txn,
                                  window);
}

SessionStep
RobotSession::stepFrame()
{
    ARCHYTAS_ASSERT(!finished(), "stepFrame on a finished session");
    has_pending_ = false;

    const dataset::FrameData &frame = frames_[next_frame_];
    const auto frame_index = static_cast<std::uint32_t>(next_frame_);
    ++next_frame_;

    // Causal scope: every span/counter/instant below -- including the
    // estimator phases and the host-link transaction -- is tagged with
    // (session, frame) and mirrored into the flight ring, and the flow
    // arc opened here is closed by the service's scheduling phase.
    ARCHYTAS_TRACE_SCOPE(static_cast<std::uint32_t>(ctx_.id),
                         frame_index, &flight_);
    ARCHYTAS_SPAN("session", "session.step");
    ARCHYTAS_FLOW_BEGIN("service", "trace.frame");

    SessionStep step;
    step.frame = estimator_.processFrame(frame);
    step.frame_offset_s = frame.timestamp - frames_.front().timestamp;
    if (has_pending_) {
        step.transaction = pending_;
        step.has_transaction = true;
        step.window = pending_window_;
    }
    results_.push_back(step.frame);

    ARCHYTAS_COUNT_ADD("session.frames", 1);
    if (step.frame.health.degraded)
        ARCHYTAS_COUNT_ADD("session.degraded_frames", 1);
    ARCHYTAS_HIST_RECORD("session.position_error",
                         step.frame.position_error);

#if ARCHYTAS_TELEMETRY_ENABLED
    // Postmortem triggers: capture the forensic ring the moment the
    // divergence watchdog trips or the hw solver falls back, while the
    // offending frame's records are still the freshest in the buffer.
    if (telemetry::enabled()) {
        if (step.frame.health.solver_diverged) {
            flight_.record(telemetry::FlightKind::Fault, "watchdog",
                           frame_index);
            dumpFlight("watchdog");
        } else if (step.frame.health.hw_fallback) {
            flight_.record(telemetry::FlightKind::Fault, "hw_fallback",
                           frame_index);
            dumpFlight("hw_fallback");
        }
    }
#endif
    return step;
}

bool
RobotSession::dumpFlight(const char *trigger,
                         const std::string &dir) const
{
#if ARCHYTAS_TELEMETRY_ENABLED
    if (!telemetry::enabled())
        return false;
    const std::string target =
        dir.empty() ? telemetry::postmortemDir() : dir;
    if (target.empty())
        return false;
    const auto frame = static_cast<std::uint32_t>(
        next_frame_ == 0 ? 0 : next_frame_ - 1);
    return flight_.writePostmortem(
        telemetry::postmortemPath(target, ctx_.label), ctx_.id,
        ctx_.label, trigger, frame);
#else
    static_cast<void>(trigger);
    static_cast<void>(dir);
    return false;
#endif
}

} // namespace archytas::service
