#include "service/async_link.hh"

#include <utility>

#include "common/contracts.hh"
#include "common/telemetry.hh"

namespace archytas::service {

AsyncTransaction::AsyncTransaction(PendingTransaction pending,
                                   double issue_s)
    : pending_(std::move(pending)), issue_s_(issue_s)
{
    ARCHYTAS_DCHECK(!pending_.schedule.attempts.empty(),
                    "async transaction with an empty attempt schedule");
}

LinkPhase
AsyncTransaction::phaseAt(double t) const
{
    if (doneBy(t))
        return LinkPhase::Done;
    const double rel = t - issue_s_;
    for (const hw::AttemptOutcome &a : pending_.schedule.attempts) {
        if (rel < a.start_s + a.duration_s)
            return LinkPhase::Transfer;
        if (rel < a.start_s + a.duration_s + a.backoff_s)
            return LinkPhase::Backoff;
    }
    return LinkPhase::Done;
}

std::size_t
AsyncTransaction::attemptsCompletedBy(double t) const
{
    const double rel = t - issue_s_;
    std::size_t n = 0;
    for (const hw::AttemptOutcome &a : pending_.schedule.attempts) {
        if (rel >= a.start_s + a.duration_s)
            ++n;
    }
    return n;
}

AsyncHostLink::AsyncHostLink(const hw::HostLink &link) : host_(link) {}

PendingTransaction
AsyncHostLink::begin(const slam::WindowWorkload &workload,
                     bool config_changed, std::size_t window_index,
                     const FaultPlan &faults) const
{
    PendingTransaction pending;
    // Flow hop: the frame's arc passes through the async issue point,
    // linking the session's numeric work to the transaction it spawned.
    ARCHYTAS_FLOW_STEP("service", "trace.frame");
    // The synchronous accounting: words, status, attempts, host.*
    // counters -- byte-for-byte what a sync caller would record.
    pending.txn = host_.windowTransaction(workload, config_changed,
                                          window_index, faults);
    // The timeline of those same attempts, from the shared planner; the
    // healthy nominal time seeds it exactly as the sync path's does.
    const double nominal =
        host_.windowTransaction(workload, config_changed).total_seconds;
    pending.schedule = hw::planAttempts(
        host_.link(), nominal,
        faults.find(window_index, FaultKind::DmaStall),
        faults.find(window_index, FaultKind::DmaTimeout));
    ARCHYTAS_DCHECK(pending.schedule.status == pending.txn.status,
                    "async/sync transaction status diverged");
    return pending;
}

} // namespace archytas::service
