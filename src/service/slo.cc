#include "service/slo.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/contracts.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"

namespace archytas::service {

bool
SloSpec::any() const
{
    return frame_p99_ms > 0.0 || max_fallback_rate >= 0.0 ||
           max_divergence_rate >= 0.0 || max_rejection_rate >= 0.0;
}

bool
SloSpec::tryParse(const std::string &text, SloSpec &spec,
                  std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("slo spec item without '=': " + item);
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char *end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (value.empty() || end == nullptr || *end != '\0')
            return fail("slo spec value not numeric: " + item);
        if (key == "p99_ms") {
            spec.frame_p99_ms = v;
        } else if (key == "fallback") {
            spec.max_fallback_rate = v;
        } else if (key == "divergence") {
            spec.max_divergence_rate = v;
        } else if (key == "reject") {
            spec.max_rejection_rate = v;
        } else if (key == "window") {
            if (v < 1.0)
                return fail("slo window must be >= 1: " + item);
            spec.window = static_cast<std::size_t>(v);
        } else {
            return fail("unknown slo spec key: " + key);
        }
    }
    return true;
}

SloSpec
SloSpec::parse(const std::string &text)
{
    SloSpec spec;
    std::string error;
    if (!tryParse(text, spec, &error))
        ARCHYTAS_FATAL("bad --slo spec: ", error);
    return spec;
}

std::string
SloSpec::describe() const
{
    char buf[64];
    std::string out;
    const auto append = [&](const char *key, double v) {
        std::snprintf(buf, sizeof buf, "%s%s=%g", out.empty() ? "" : ",",
                      key, v);
        out += buf;
    };
    if (frame_p99_ms > 0.0)
        append("p99_ms", frame_p99_ms);
    if (max_fallback_rate >= 0.0)
        append("fallback", max_fallback_rate);
    if (max_divergence_rate >= 0.0)
        append("divergence", max_divergence_rate);
    if (max_rejection_rate >= 0.0)
        append("reject", max_rejection_rate);
    append("window", static_cast<double>(window));
    return out;
}

SloEngine::SloEngine(const SloSpec &spec) : spec_(spec)
{
    ARCHYTAS_ASSERT(spec.window > 0, "slo window must be >= 1");
}

namespace {

/** Pushes into a sliding window, evicting the oldest past capacity. */
template <typename T>
void
slide(std::deque<T> &window, T value, std::size_t capacity)
{
    window.push_back(value);
    if (window.size() > capacity)
        window.pop_front();
}

/** Fraction of set flags in a window (0 on an empty window). */
double
rate(const std::deque<std::uint8_t> &window)
{
    if (window.empty())
        return 0.0;
    std::size_t set = 0;
    for (const std::uint8_t f : window)
        set += f;
    return static_cast<double>(set) /
           static_cast<double>(window.size());
}

} // namespace

void
SloEngine::evaluateWindows()
{
    if (spec_.frame_p99_ms > 0.0 && !latencies_.empty()) {
        std::vector<double> ms(latencies_.begin(), latencies_.end());
        p99_.observe(percentile(std::move(ms), 99.0),
                     spec_.frame_p99_ms);
    }
    if (spec_.max_fallback_rate >= 0.0 && !fallbacks_.empty())
        fallback_.observe(rate(fallbacks_), spec_.max_fallback_rate);
    if (spec_.max_divergence_rate >= 0.0 && !diverged_.empty())
        divergence_.observe(rate(diverged_),
                            spec_.max_divergence_rate);
}

void
SloEngine::recordFrame(bool optimized, double latency_ms, bool hw_solved,
                       bool diverged)
{
    if (!spec_.any())
        return;
    if (optimized) {
        slide(latencies_, latency_ms, spec_.window);
        slide<std::uint8_t>(fallbacks_, hw_solved ? 0 : 1,
                            spec_.window);
    }
    slide<std::uint8_t>(diverged_, diverged ? 1 : 0, spec_.window);
    evaluateWindows();
}

void
SloEngine::recordAdmission(bool rejected)
{
    if (rejected)
        ++rejections_;
    else
        ++admissions_;
    if (spec_.max_rejection_rate >= 0.0) {
        const std::uint64_t total = admissions_ + rejections_;
        rejection_.observe(static_cast<double>(rejections_) /
                               static_cast<double>(total),
                           spec_.max_rejection_rate);
    }
}

std::vector<SloVerdict>
SloEngine::verdicts() const
{
    std::vector<SloVerdict> out;
    const auto add = [&](const char *name, double bound,
                         const Objective &o) {
        SloVerdict v;
        v.objective = name;
        v.bound = bound;
        v.worst = o.worst;
        v.evaluations = o.evaluations;
        v.violations = o.violations;
        out.push_back(std::move(v));
    };
    if (spec_.frame_p99_ms > 0.0)
        add("frame_p99_ms", spec_.frame_p99_ms, p99_);
    if (spec_.max_fallback_rate >= 0.0)
        add("fallback_rate", spec_.max_fallback_rate, fallback_);
    if (spec_.max_divergence_rate >= 0.0)
        add("divergence_rate", spec_.max_divergence_rate, divergence_);
    if (spec_.max_rejection_rate >= 0.0)
        add("rejection_rate", spec_.max_rejection_rate, rejection_);
    return out;
}

bool
SloEngine::allPass() const
{
    for (const SloVerdict &v : verdicts()) {
        if (!v.pass())
            return false;
    }
    return true;
}

void
SloEngine::publish() const
{
    if (spec_.frame_p99_ms > 0.0)
        ARCHYTAS_GAUGE_SET("slo.frame_p99_ms", p99_.worst);
    if (spec_.max_fallback_rate >= 0.0)
        ARCHYTAS_GAUGE_SET("slo.fallback_rate", fallback_.worst);
    if (spec_.max_divergence_rate >= 0.0)
        ARCHYTAS_GAUGE_SET("slo.divergence_rate", divergence_.worst);
    if (spec_.max_rejection_rate >= 0.0)
        ARCHYTAS_GAUGE_SET("slo.rejection_rate", rejection_.worst);
    for (const SloVerdict &v : verdicts()) {
        ARCHYTAS_COUNT_ADD("slo.evaluations", v.evaluations);
        ARCHYTAS_COUNT_ADD("slo.violations", v.violations);
        ARCHYTAS_INSTANT("slo", "slo.verdict",
                         {"pass", v.pass() ? 1.0 : 0.0},
                         {"bound", v.bound},
                         {"observed", v.worst},
                         {"violations",
                          static_cast<double>(v.violations)});
    }
}

} // namespace archytas::service
