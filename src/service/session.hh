/**
 * @file
 * One robot's localization session inside the multi-robot service
 * (docs/SERVICE.md). A RobotSession owns the complete per-robot stack --
 * dataset frames, sliding-window estimator, runtime controller, hardware
 * window solver, solver scratch, fault plan, and RNG stream -- bundled
 * behind a SessionContext. Nothing in here is shared between sessions,
 * so any number of them can step concurrently on the process-wide pool
 * and still produce trajectories bit-identical to a serial run (the
 * PR-3 determinism contract extended to session granularity).
 *
 * The session's window solves go through the *async* host-link path:
 * the transaction outcome (status, attempt schedule) is computed when
 * the window is solved -- it is a pure function of the fault plan, so
 * it can run on a pool worker -- while its placement on the service's
 * simulated timeline happens later, in the service's deterministic
 * serial scheduling phase (service.hh).
 */

#ifndef ARCHYTAS_SERVICE_SESSION_HH
#define ARCHYTAS_SERVICE_SESSION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/flight_recorder.hh"
#include "common/rng.hh"
#include "dataset/sequence.hh"
#include "hw/hw_solver.hh"
#include "runtime/controller.hh"
#include "service/async_link.hh"
#include "slam/estimator.hh"

namespace archytas::service {

/**
 * Per-session identity and reproducibility bundle. Everything that
 * makes a session's run replayable lives here: the fault plan drives
 * injected faults, the RNG stream (forked deterministically from the
 * service seed and the session id) is the session's private source of
 * randomness, and the label prefixes the session's log lines and
 * per-session report entries.
 */
struct SessionContext
{
    std::size_t id = 0;
    std::string label;   //!< Log/report prefix, e.g. "session-03".
    FaultPlan faults;    //!< Per-session fault schedule.
    Rng rng{0};          //!< Private deterministic stream.
};

/** Configuration of one robot session. */
struct SessionConfig
{
    /** Label override; empty derives "session-<id>". */
    std::string name;
    /** Synthetic sequence parameters (dataset/sequence.hh). */
    dataset::SequenceConfig sequence;
    /** EuRoC-like trajectory instead of KITTI-like. */
    bool euroc_like = false;
    slam::EstimatorOptions estimator;
    /** Accelerator configuration solving this session's windows. */
    hw::HwConfig accel;
    hw::HostLink link;
    /** Fault schedule; also drives dataset::corruptFrames. */
    FaultPlan faults;
    /** Open-loop arrival time of the session (service timeline, s). */
    double arrival_s = 0.0;
    /** Install the runtime iteration controller (Sec. 6.2). */
    bool use_runtime_controller = true;
    runtime::IterTable iter_table = runtime::IterTable::alwaysMax();
};

/** One stepped frame, plus the inputs the service needs to place it on
 *  the simulated timeline. */
struct SessionStep
{
    slam::FrameResult frame;
    /** Frame availability offset from the session's first frame (s). */
    double frame_offset_s = 0.0;
    /** The window's host-link transaction; only meaningful when the
     *  frame was optimized. */
    PendingTransaction transaction;
    bool has_transaction = false;
    /** Window index of the transaction (fault-plan numbering). */
    std::size_t window = 0;
};

/**
 * One robot's full localization stack. Instances are self-contained:
 * stepping two different sessions from two pool workers touches no
 * common mutable state (telemetry shards are thread-local; the pool
 * itself is the one waived process-wide singleton).
 */
class RobotSession
{
  public:
    RobotSession(std::size_t id, const SessionConfig &config,
                 std::uint64_t service_seed);

    const SessionContext &context() const { return ctx_; }
    const SessionConfig &config() const { return config_; }

    bool finished() const { return next_frame_ >= frames_.size(); }
    std::size_t frameIndex() const { return next_frame_; }
    std::size_t frameCount() const { return frames_.size(); }

    /**
     * Processes the next frame (numeric work; safe to run on a pool
     * worker concurrently with other sessions' steps). The caller must
     * check finished() first.
     */
    SessionStep stepFrame();

    /** Trajectory so far (one entry per processed frame). */
    const std::vector<slam::FrameResult> &results() const
    {
        return results_;
    }

    const slam::SlidingWindowEstimator &estimator() const
    {
        return estimator_;
    }
    const hw::HwWindowSolver &solver() const { return solver_; }
    const runtime::RuntimeController &controller() const
    {
        return controller_;
    }
    const AsyncHostLink &link() const { return link_; }

    /** The session's postmortem ring (empty while telemetry is off). */
    const telemetry::FlightRecorder &flight() const { return flight_; }
    telemetry::FlightRecorder &flight() { return flight_; }

    /**
     * Dumps the flight ring as `postmortem_<label>.json` under dir
     * (telemetry::postmortemDir() when dir is empty; no-op when both
     * are empty or telemetry is off). Returns true when a bundle was
     * written.
     */
    bool dumpFlight(const char *trigger,
                    const std::string &dir = std::string()) const;

  private:
    [[nodiscard]] slam::LmReport
    solveWindowAsync(slam::WindowProblem &problem,
                     const slam::LmOptions &options,
                     slam::HealthReport &health);

    SessionConfig config_;
    SessionContext ctx_;
    dataset::Sequence sequence_;
    /** The frames actually fed to the estimator: the sequence's, run
     *  through dataset::corruptFrames when the plan schedules
     *  frame-level faults. */
    std::vector<dataset::FrameData> frames_;
    slam::SlidingWindowEstimator estimator_;
    hw::HwWindowSolver solver_;
    runtime::RuntimeController controller_;
    AsyncHostLink link_;
    std::size_t next_frame_ = 0;
    std::size_t window_index_ = 0;
    bool config_sent_ = false;
    /** Transaction of the window currently being stepped. */
    PendingTransaction pending_;
    bool has_pending_ = false;
    std::size_t pending_window_ = 0;
    std::vector<slam::FrameResult> results_;
    /** Postmortem ring mirroring this session's spans/counters/instants
     *  while its trace scope is active (common/flight_recorder.hh). */
    telemetry::FlightRecorder flight_;
};

} // namespace archytas::service

#endif // ARCHYTAS_SERVICE_SESSION_HH
