/**
 * @file
 * In-process SLO engine (docs/OBSERVABILITY.md): a small declarative
 * spec of service-level objectives -- frame-latency p99 bound,
 * software-fallback rate, divergence rate, admission-rejection rate --
 * evaluated over sliding windows *inside the service scheduling phase*,
 * on simulated-timeline numbers only.
 *
 * Determinism contract: every input the engine sees (frame latencies,
 * fallback/divergence flags, admission decisions) is fixed by the
 * numeric phase and placed by the serial scheduling phase, so verdicts
 * are bit-identical at any ARCHYTAS_THREADS. No wall-clock values are
 * consumed; the `slo.*` gauges are therefore *not* `_ms`-exempt -- they
 * must reproduce exactly (tested by test_service_determinism.cc).
 *
 * Spec format (SloSpec::parse): comma-separated `key=value` pairs --
 * `p99_ms=<bound>` (frame-latency p99, milliseconds),
 * `fallback=<rate>` / `divergence=<rate>` / `reject=<rate>` (fractions
 * in [0,1]), `window=<frames>` (sliding-window length, default 64).
 * Omitted objectives are disabled. Example:
 * `p99_ms=250,fallback=0.10,divergence=0.05,reject=0.25,window=64`.
 */

#ifndef ARCHYTAS_SERVICE_SLO_HH
#define ARCHYTAS_SERVICE_SLO_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace archytas::service {

/** Declarative SLO spec; disabled objectives use their sentinel. */
struct SloSpec
{
    /** Frame-latency p99 bound in ms over the window; <= 0 disables. */
    double frame_p99_ms = 0.0;
    /** Max software-fallback fraction over the window; < 0 disables. */
    double max_fallback_rate = -1.0;
    /** Max diverged-frame fraction over the window; < 0 disables. */
    double max_divergence_rate = -1.0;
    /** Max admission-rejection fraction (whole run); < 0 disables. */
    double max_rejection_rate = -1.0;
    /** Sliding-window length in frames. */
    std::size_t window = 64;

    /** True when at least one objective is enabled. */
    bool any() const;

    /**
     * Parses the `key=value,...` format above into spec; returns false
     * (with a diagnostic in *error when given) on an unknown key or a
     * malformed value, leaving spec partially updated.
     */
    static bool tryParse(const std::string &text, SloSpec &spec,
                         std::string *error = nullptr);
    /** tryParse that dies on malformed input (CLI entry points). */
    static SloSpec parse(const std::string &text);

    /** The spec back in its parse format (round-trips). */
    std::string describe() const;
};

/** Outcome of one objective over the run. */
struct SloVerdict
{
    std::string objective;     //!< "frame_p99_ms", "fallback_rate", ...
    double bound = 0.0;
    double worst = 0.0;        //!< Worst windowed value observed.
    std::uint64_t evaluations = 0;
    std::uint64_t violations = 0;

    bool pass() const { return violations == 0; }
};

/**
 * Evaluates an SloSpec over the service run. Feed it from the serial
 * scheduling phase only (it keeps no locks); read verdicts() once the
 * run completes and publish() them as `slo.*` telemetry.
 */
class SloEngine
{
  public:
    explicit SloEngine(const SloSpec &spec);

    /**
     * One scheduled frame: optimized says whether the frame closed a
     * window (only those carry a latency / fallback sample); latency_ms
     * is the simulated open-loop frame latency; diverged mirrors
     * HealthReport::solver_diverged.
     */
    void recordFrame(bool optimized, double latency_ms, bool hw_solved,
                     bool diverged);

    /** One admission decision (rejected = turned away at arrival). */
    void recordAdmission(bool rejected);

    const SloSpec &spec() const { return spec_; }

    /** Verdicts for every *enabled* objective (empty spec -> empty). */
    std::vector<SloVerdict> verdicts() const;

    /** True when every enabled objective passed so far. */
    bool allPass() const;

    /**
     * Emits the verdicts as telemetry: one `slo.<objective>` gauge per
     * enabled objective (worst windowed value), `slo.evaluations` /
     * `slo.violations` counters, and one `slo.verdict` instant per
     * objective. Call quiescently, after the run.
     */
    void publish() const;

  private:
    void evaluateWindows();

    SloSpec spec_;

    std::deque<double> latencies_;     //!< Optimized frames only.
    std::deque<std::uint8_t> fallbacks_;
    std::deque<std::uint8_t> diverged_;   //!< Every frame.
    std::uint64_t admissions_ = 0;
    std::uint64_t rejections_ = 0;

    struct Objective
    {
        double worst = 0.0;
        std::uint64_t evaluations = 0;
        std::uint64_t violations = 0;

        void
        observe(double value, double bound)
        {
            ++evaluations;
            if (evaluations == 1 || value > worst)
                worst = value;
            if (value > bound)
                ++violations;
        }
    };
    Objective p99_;
    Objective fallback_;
    Objective divergence_;
    Objective rejection_;
};

} // namespace archytas::service

#endif // ARCHYTAS_SERVICE_SLO_HH
