#include "synth/optimizer.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace archytas::synth {

Synthesizer::Synthesizer(LatencyModel latency, ResourceModel resources,
                         PowerModel power, FpgaPlatform platform,
                         SearchSpace space)
    : latency_(std::move(latency)), resources_(resources), power_(power),
      platform_(std::move(platform)), space_(space)
{
    ARCHYTAS_ASSERT(space_.nd_max >= 1 && space_.nm_max >= 1 &&
                        space_.s_max >= 1,
                    "empty search space");
}

DesignPoint
Synthesizer::evaluate(const hw::HwConfig &c, std::size_t iterations) const
{
    DesignPoint p;
    p.config = c;
    p.latency_ms = latency_.latencyMs(c, iterations);
    p.power_w = power_.watts(c);
    p.usage = resources_.usage(c);
    return p;
}

std::optional<DesignPoint>
Synthesizer::searchMinPower(double latency_bound_ms,
                            std::size_t iterations,
                            const hw::HwConfig &cap) const
{
    // Pruned scan. Power is strictly increasing in every knob, so once a
    // feasible design is found at power P, any configuration with power
    // >= P can be skipped without evaluating its latency. Latency is
    // non-increasing in every knob, so within one (nd, nm) column we
    // binary-search the smallest s meeting the bound instead of walking
    // all s values.
    std::size_t evals = 0;
    std::optional<DesignPoint> best;

    const std::size_t nd_hi = std::min(space_.nd_max, cap.nd);
    const std::size_t nm_hi = std::min(space_.nm_max, cap.nm);
    const std::size_t s_hi = std::min(space_.s_max, cap.s);

    for (std::size_t nd = 1; nd <= nd_hi; ++nd) {
        for (std::size_t nm = 1; nm <= nm_hi; ++nm) {
            // Binary search the smallest s whose latency meets the
            // bound (latency is non-increasing in s).
            std::size_t lo = 1, hi = s_hi;
            // Quick feasibility check at the largest s.
            {
                const hw::HwConfig c{nd, nm, s_hi};
                ++evals;
                if (latency_.latencyMs(c, iterations) > latency_bound_ms)
                    continue;   // No s helps for this (nd, nm).
            }
            while (lo < hi) {
                const std::size_t mid = lo + (hi - lo) / 2;
                const hw::HwConfig c{nd, nm, mid};
                ++evals;
                if (latency_.latencyMs(c, iterations) <= latency_bound_ms)
                    hi = mid;
                else
                    lo = mid + 1;
            }
            const hw::HwConfig c{nd, nm, lo};
            if (!resources_.fits(c, platform_))
                continue;
            const double power = power_.watts(c);
            if (!best || power < best->power_w)
                best = evaluate(c, iterations);
        }
    }
    last_evals_.store(evals, std::memory_order_relaxed);
    return best;
}

std::optional<DesignPoint>
Synthesizer::minimizePower(double latency_bound_ms,
                           std::size_t iterations) const
{
    return searchMinPower(latency_bound_ms, iterations,
                          {space_.nd_max, space_.nm_max, space_.s_max});
}

std::optional<DesignPoint>
Synthesizer::minimizePowerCapped(double latency_bound_ms,
                                 std::size_t iterations,
                                 const hw::HwConfig &cap) const
{
    return searchMinPower(latency_bound_ms, iterations, cap);
}

std::optional<DesignPoint>
Synthesizer::minimizeLatency(std::size_t iterations) const
{
    std::size_t evals = 0;
    std::optional<DesignPoint> best;
    for (std::size_t nd = 1; nd <= space_.nd_max; ++nd) {
        for (std::size_t nm = 1; nm <= space_.nm_max; ++nm) {
            // Latency is non-increasing in s: the best s for this column
            // is the largest one still fitting the resource envelope.
            // Resources increase with s, so binary-search the largest
            // fitting s.
            std::size_t lo = 1, hi = space_.s_max;
            if (!resources_.fits({nd, nm, 1}, platform_))
                continue;
            while (lo < hi) {
                const std::size_t mid = lo + (hi - lo + 1) / 2;
                if (resources_.fits({nd, nm, mid}, platform_))
                    lo = mid;
                else
                    hi = mid - 1;
            }
            const hw::HwConfig c{nd, nm, lo};
            ++evals;
            const double lat = latency_.latencyMs(c, iterations);
            if (!best || lat < best->latency_ms)
                best = evaluate(c, iterations);
        }
    }
    last_evals_.store(evals, std::memory_order_relaxed);
    return best;
}

std::vector<DesignPoint>
Synthesizer::paretoFrontier(const std::vector<double> &latency_bounds_ms,
                            std::size_t iterations) const
{
    // Each latency bound is an independent constrained search writing
    // only its own slot, so the sweep fans out across the pool. The
    // dominance filter is order-sensitive (earlier bounds shadow later
    // ones), so it runs serially over the slots afterward -- same result
    // as the all-serial loop at any thread count.
    std::vector<std::optional<DesignPoint>> points(
        latency_bounds_ms.size());
    parallel::parallelFor(0, latency_bounds_ms.size(), [&](std::size_t i) {
        points[i] = minimizePower(latency_bounds_ms[i], iterations);
    });

    std::vector<DesignPoint> frontier;
    for (const auto &p : points) {
        if (!p)
            continue;
        // Keep only non-dominated points.
        const bool dominated =
            std::any_of(frontier.begin(), frontier.end(),
                        [&](const DesignPoint &q) {
                            return q.latency_ms <= p->latency_ms &&
                                   q.power_w <= p->power_w;
                        });
        if (!dominated)
            frontier.push_back(*p);
    }
    return frontier;
}

std::optional<DesignPoint>
Synthesizer::minimizePowerExhaustive(double latency_bound_ms,
                                     std::size_t iterations) const
{
    std::size_t evals = 0;
    std::optional<DesignPoint> best;
    for (std::size_t nd = 1; nd <= space_.nd_max; ++nd)
        for (std::size_t nm = 1; nm <= space_.nm_max; ++nm)
            for (std::size_t s = 1; s <= space_.s_max; ++s) {
                const hw::HwConfig c{nd, nm, s};
                ++evals;
                if (!resources_.fits(c, platform_))
                    continue;
                if (latency_.latencyMs(c, iterations) > latency_bound_ms)
                    continue;
                const double power = power_.watts(c);
                if (!best || power < best->power_w)
                    best = evaluate(c, iterations);
            }
    last_evals_.store(evals, std::memory_order_relaxed);
    return best;
}

} // namespace archytas::synth
