/**
 * @file
 * The hardware synthesizer's constrained optimizer (Sec. 5). The paper
 * solves a 3-variable mixed-integer convex program (Eq. 11/12) with
 * YALMIP in ~3 seconds; the same space (~90,000 lattice points) is
 * solved here exactly in milliseconds with a pruned scan that exploits
 * the monotonic structure: power and resources increase with each knob
 * while latency decreases.
 */

#ifndef ARCHYTAS_SYNTH_OPTIMIZER_HH
#define ARCHYTAS_SYNTH_OPTIMIZER_HH

#include <atomic>
#include <optional>
#include <vector>

#include "synth/models.hh"

namespace archytas::synth {

/** Search-space bounds; defaults give the paper's ~90k-design space. */
struct SearchSpace
{
    std::size_t nd_max = 30;
    std::size_t nm_max = 30;
    std::size_t s_max = 100;

    std::size_t
    size() const
    {
        return nd_max * nm_max * s_max;
    }
};

/** A fully evaluated design point. */
struct DesignPoint
{
    hw::HwConfig config;
    double latency_ms = 0.0;
    double power_w = 0.0;
    ResourceVector usage{};
};

/** The synthesizer: models + platform + workload. */
class Synthesizer
{
  public:
    Synthesizer(LatencyModel latency, ResourceModel resources,
                PowerModel power, FpgaPlatform platform,
                SearchSpace space = {});

    /**
     * Eq. 11: minimize power subject to a latency bound (ms) and the
     * platform's resource envelope. nullopt when infeasible.
     */
    std::optional<DesignPoint> minimizePower(double latency_bound_ms,
                                             std::size_t iterations) const;

    /** Eq. 12: minimize latency subject to resources only. */
    std::optional<DesignPoint> minimizeLatency(std::size_t iterations)
        const;

    /**
     * Eq. 18 (run-time re-optimization): minimize power subject to the
     * latency bound with every knob capped by the built design.
     */
    std::optional<DesignPoint> minimizePowerCapped(
        double latency_bound_ms, std::size_t iterations,
        const hw::HwConfig &cap) const;

    /**
     * The latency-vs-power Pareto frontier (Fig. 14): power-optimal
     * designs for a sweep of latency bounds.
     */
    std::vector<DesignPoint> paretoFrontier(
        const std::vector<double> &latency_bounds_ms,
        std::size_t iterations) const;

    /** Evaluates one configuration under all three models. */
    DesignPoint evaluate(const hw::HwConfig &c, std::size_t iterations)
        const;

    /**
     * Reference implementation: unpruned exhaustive scan, used by tests
     * to prove the pruned search exact.
     */
    std::optional<DesignPoint> minimizePowerExhaustive(
        double latency_bound_ms, std::size_t iterations) const;

    /**
     * Number of model evaluations spent by the last completed search.
     * When searches run concurrently (e.g. inside paretoFrontier or a
     * parallel Iter sweep), this reports one of them -- whichever
     * published last.
     */
    std::size_t
    lastEvaluations() const
    {
        return last_evals_.load(std::memory_order_relaxed);
    }

    const SearchSpace &space() const { return space_; }
    const FpgaPlatform &platform() const { return platform_; }

  private:
    std::optional<DesignPoint> searchMinPower(double latency_bound_ms,
                                              std::size_t iterations,
                                              const hw::HwConfig &cap)
        const;

    LatencyModel latency_;
    ResourceModel resources_;
    PowerModel power_;
    FpgaPlatform platform_;
    SearchSpace space_;
    // Atomic so const searches may run concurrently from the pool; each
    // search counts locally and publishes once on completion.
    mutable std::atomic<std::size_t> last_evals_{0};
};

} // namespace archytas::synth

#endif // ARCHYTAS_SYNTH_OPTIMIZER_HH
