/**
 * @file
 * Structural Verilog emitter: the synthesizer's final step (Fig. 1)
 * concretizes the hardware template into synthesizable Verilog with the
 * optimized (nd, nm, s) values baked into generate loops, plus the
 * sized on-chip buffers and the clock-gating control the run-time
 * system drives (Sec. 6.2). No FPGA toolchain exists in this
 * environment, so the emitted RTL is validated structurally (module
 * hierarchy, parameter propagation, port discipline) by the test suite
 * rather than by synthesis -- see DESIGN.md.
 */

#ifndef ARCHYTAS_SYNTH_VERILOG_HH
#define ARCHYTAS_SYNTH_VERILOG_HH

#include <string>

#include "hw/config.hh"
#include "slam/state.hh"

namespace archytas::synth {

/** Options controlling the emitted design. */
struct VerilogOptions
{
    std::string top_name = "archytas_top";
    /** Data path width in bits (the paper's fixed-point datapath). */
    std::size_t data_width = 32;
    /** Emit the clock-gating control plane for run-time re-optimization. */
    bool emit_clock_gating = true;
    /** Sliding-window sizing used to dimension the on-chip buffers. */
    std::size_t max_features = 256;
    std::size_t max_keyframes = 12;
};

/**
 * Emits the full synthesizable design for a concrete configuration:
 * the top module, the Jacobian units, the parameterized Cholesky unit
 * (s Update instances), the two Schur units (nd / nm MAC instances),
 * the buffers, and the gating controller.
 */
std::string emitVerilog(const hw::HwConfig &config,
                        const VerilogOptions &options = {});

} // namespace archytas::synth

#endif // ARCHYTAS_SYNTH_VERILOG_HH
