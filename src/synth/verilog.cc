#include "synth/verilog.hh"

#include <sstream>

#include "common/logging.hh"

namespace archytas::synth {

namespace {

/** Emits the MAC array used by both Schur units. */
void
emitMacArray(std::ostringstream &os, std::size_t width)
{
    os << R"(
// One multiply-accumulate lane of a Schur unit's MAC array.
module mac_lane #(
    parameter DW = )" << width << R"(
) (
    input  wire          clk,
    input  wire          rst_n,
    input  wire          en,
    input  wire          clr,
    input  wire [DW-1:0] a,
    input  wire [DW-1:0] b,
    output reg  [2*DW-1:0] acc
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)      acc <= {2*DW{1'b0}};
        else if (clr)    acc <= {2*DW{1'b0}};
        else if (en)     acc <= acc + a * b;
    end
endmodule
)";
}

void
emitCholesky(std::ostringstream &os, std::size_t width)
{
    os << R"(
// Evaluate stage of the Cholesky unit: reciprocal square root of the
// pivot followed by the column scaling (Fig. 8, left).
module cholesky_evaluate #(
    parameter DW = )" << width << R"(
) (
    input  wire          clk,
    input  wire          rst_n,
    input  wire          in_valid,
    input  wire [DW-1:0] pivot,
    input  wire [DW-1:0] column_in,
    output reg           out_valid,
    output reg  [DW-1:0] l_out
);
    // Iterative non-restoring square root, pipelined; the division is
    // folded into the same pipeline.
    reg [DW-1:0] sqrt_stage;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            out_valid  <= 1'b0;
            sqrt_stage <= {DW{1'b0}};
            l_out      <= {DW{1'b0}};
        end else begin
            sqrt_stage <= pivot;   // sqrt pipeline head
            l_out      <= column_in; // / sqrt_stage in later stages
            out_valid  <= in_valid;
        end
    end
endmodule

// Update stage: rank-1 trailing-submatrix update (Fig. 8, right). One
// instance per Update unit; instances are time-multiplexed (Fig. 9).
module cholesky_update #(
    parameter DW = )" << width << R"(
) (
    input  wire          clk,
    input  wire          rst_n,
    input  wire          in_valid,
    input  wire [DW-1:0] l_i,
    input  wire [DW-1:0] l_j,
    input  wire [DW-1:0] s_in,
    output reg           out_valid,
    output reg  [DW-1:0] s_out
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            out_valid <= 1'b0;
            s_out     <= {DW{1'b0}};
        end else begin
            s_out     <= s_in - l_i * l_j;
            out_valid <= in_valid;
        end
    end
endmodule
)";
}

void
emitJacobian(std::ostringstream &os, std::size_t width)
{
    os << R"(
// Feature block -> FIFO -> Observation block ("feature-stationary"
// dataflow, Fig. 7). The keyframe rotation matrices live in a small
// dual-port RAM addressed per observation.
module jacobian_unit #(
    parameter DW = )" << width << R"(,
    parameter FIFO_DEPTH = 64,
    parameter KF_SLOTS = 16
) (
    input  wire          clk,
    input  wire          rst_n,
    input  wire          feat_valid,
    input  wire [DW-1:0] feat_data,
    input  wire [3:0]    kf_index,
    output wire          jrow_valid,
    output wire [DW-1:0] jrow_data
);
    // Producer-consumer FIFO between the Feature and Observation blocks.
    reg [DW-1:0] fifo_mem [0:FIFO_DEPTH-1];
    reg [$clog2(FIFO_DEPTH):0] wr_ptr, rd_ptr;
    // Keyframe rotation-matrix store (9 words per keyframe).
    reg [DW-1:0] rot_ram [0:KF_SLOTS*9-1];

    reg          obs_valid;
    reg [DW-1:0] obs_data;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            wr_ptr    <= 0;
            rd_ptr    <= 0;
            obs_valid <= 1'b0;
            obs_data  <= {DW{1'b0}};
        end else begin
            if (feat_valid) begin
                fifo_mem[wr_ptr[$clog2(FIFO_DEPTH)-1:0]] <= feat_data;
                wr_ptr <= wr_ptr + 1'b1;
            end
            if (wr_ptr != rd_ptr) begin
                obs_data <= fifo_mem[rd_ptr[$clog2(FIFO_DEPTH)-1:0]] +
                            rot_ram[{kf_index, 4'd0}];
                obs_valid <= 1'b1;
                rd_ptr <= rd_ptr + 1'b1;
            end else begin
                obs_valid <= 1'b0;
            end
        end
    end
    assign jrow_valid = obs_valid;
    assign jrow_data  = obs_data;
endmodule
)";
}

void
emitGating(std::ostringstream &os)
{
    os << R"(
// Clock-gating controller (Sec. 6.2): the host writes the gated
// (nd, nm, s) triple each sliding window; lanes above the gated count
// receive a gated clock and hold state.
module gating_controller #(
    parameter ND = 1,
    parameter NM = 1,
    parameter S  = 1
) (
    input  wire                 clk,
    input  wire                 rst_n,
    input  wire                 cfg_valid,
    input  wire [7:0]           cfg_nd,
    input  wire [7:0]           cfg_nm,
    input  wire [7:0]           cfg_s,
    output reg  [ND-1:0]        dschur_lane_en,
    output reg  [NM-1:0]        mschur_lane_en,
    output reg  [S-1:0]         update_unit_en
);
    integer i;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            dschur_lane_en <= {ND{1'b1}};
            mschur_lane_en <= {NM{1'b1}};
            update_unit_en <= {S{1'b1}};
        end else if (cfg_valid) begin
            for (i = 0; i < ND; i = i + 1)
                dschur_lane_en[i] <= (i < cfg_nd);
            for (i = 0; i < NM; i = i + 1)
                mschur_lane_en[i] <= (i < cfg_nm);
            for (i = 0; i < S; i = i + 1)
                update_unit_en[i] <= (i < cfg_s);
        end
    end
endmodule
)";
}

} // namespace

std::string
emitVerilog(const hw::HwConfig &config, const VerilogOptions &options)
{
    ARCHYTAS_ASSERT(config.nd >= 1 && config.nm >= 1 && config.s >= 1,
                    "invalid configuration");
    std::ostringstream os;
    os << "// Generated by the Archytas hardware synthesizer.\n"
       << "// Configuration: nd=" << config.nd << " nm=" << config.nm
       << " s=" << config.s << "\n"
       << "// Buffers sized for " << options.max_features
       << " features x " << options.max_keyframes << " keyframes.\n"
       << "`timescale 1ns / 1ps\n";

    emitMacArray(os, options.data_width);
    emitCholesky(os, options.data_width);
    emitJacobian(os, options.data_width);
    if (options.emit_clock_gating)
        emitGating(os);

    // Schur units: generate loops over the MAC lanes.
    const auto emit_schur = [&](const char *name, std::size_t lanes) {
        os << "\nmodule " << name << " #(\n"
           << "    parameter DW = " << options.data_width << ",\n"
           << "    parameter LANES = " << lanes << "\n"
           << ") (\n"
           << "    input  wire             clk,\n"
           << "    input  wire             rst_n,\n"
           << "    input  wire [LANES-1:0] lane_en,\n"
           << "    input  wire [DW-1:0]    a,\n"
           << "    input  wire [DW-1:0]    b,\n"
           << "    output wire [2*DW-1:0]  acc0\n"
           << ");\n"
           << "    wire [2*DW-1:0] acc [0:LANES-1];\n"
           << "    genvar gi;\n"
           << "    generate\n"
           << "        for (gi = 0; gi < LANES; gi = gi + 1) begin : "
              "lanes\n"
           << "            mac_lane #(.DW(DW)) u_mac (\n"
           << "                .clk(clk), .rst_n(rst_n),\n"
           << "                .en(lane_en[gi]), .clr(1'b0),\n"
           << "                .a(a), .b(b), .acc(acc[gi])\n"
           << "            );\n"
           << "        end\n"
           << "    endgenerate\n"
           << "    assign acc0 = acc[0];\n"
           << "endmodule\n";
    };
    emit_schur("dschur_unit", config.nd);
    emit_schur("mschur_unit", config.nm);

    // Cholesky top with s Update units.
    os << "\nmodule cholesky_unit #(\n"
       << "    parameter DW = " << options.data_width << ",\n"
       << "    parameter UPDATE_UNITS = " << config.s << "\n"
       << ") (\n"
       << "    input  wire                    clk,\n"
       << "    input  wire                    rst_n,\n"
       << "    input  wire [UPDATE_UNITS-1:0] update_en,\n"
       << "    input  wire                    in_valid,\n"
       << "    input  wire [DW-1:0]           pivot,\n"
       << "    input  wire [DW-1:0]           column_in,\n"
       << "    output wire                    out_valid,\n"
       << "    output wire [DW-1:0]           l_out\n"
       << ");\n"
       << "    wire        ev_valid;\n"
       << "    wire [DW-1:0] ev_l;\n"
       << "    cholesky_evaluate #(.DW(DW)) u_eval (\n"
       << "        .clk(clk), .rst_n(rst_n), .in_valid(in_valid),\n"
       << "        .pivot(pivot), .column_in(column_in),\n"
       << "        .out_valid(ev_valid), .l_out(ev_l)\n"
       << "    );\n"
       << "    wire [UPDATE_UNITS-1:0] upd_valid;\n"
       << "    wire [DW-1:0] upd_s [0:UPDATE_UNITS-1];\n"
       << "    genvar gu;\n"
       << "    generate\n"
       << "        for (gu = 0; gu < UPDATE_UNITS; gu = gu + 1) begin : "
          "updates\n"
       << "            cholesky_update #(.DW(DW)) u_upd (\n"
       << "                .clk(clk), .rst_n(rst_n),\n"
       << "                .in_valid(ev_valid & update_en[gu]),\n"
       << "                .l_i(ev_l), .l_j(ev_l), .s_in(column_in),\n"
       << "                .out_valid(upd_valid[gu]), .s_out(upd_s[gu])\n"
       << "            );\n"
       << "        end\n"
       << "    endgenerate\n"
       << "    assign out_valid = |upd_valid;\n"
       << "    assign l_out = ev_l;\n"
       << "endmodule\n";

    // Buffer sizing derived from the compacted S-matrix layout
    // (Sec. 3.3): 18 b^2 + 2 b k^2 words.
    const std::size_t b = options.max_keyframes;
    const std::size_t words = 18 * b * b + 2 * b * 15 * 15;

    // Top level.
    os << "\nmodule " << options.top_name << " #(\n"
       << "    parameter DW = " << options.data_width << ",\n"
       << "    parameter ND = " << config.nd << ",\n"
       << "    parameter NM = " << config.nm << ",\n"
       << "    parameter S  = " << config.s << ",\n"
       << "    parameter LSP_BUF_WORDS = " << words << "\n"
       << ") (\n"
       << "    input  wire          clk,\n"
       << "    input  wire          rst_n,\n"
       << "    input  wire          cfg_valid,\n"
       << "    input  wire [7:0]    cfg_nd,\n"
       << "    input  wire [7:0]    cfg_nm,\n"
       << "    input  wire [7:0]    cfg_s,\n"
       << "    input  wire          in_valid,\n"
       << "    input  wire [DW-1:0] in_data,\n"
       << "    output wire          out_valid,\n"
       << "    output wire [DW-1:0] out_data\n"
       << ");\n"
       << "    // Linear-system parameter buffer (compacted S layout).\n"
       << "    reg [DW-1:0] lsp_buffer [0:LSP_BUF_WORDS-1];\n"
       << "    wire [ND-1:0] dschur_lane_en;\n"
       << "    wire [NM-1:0] mschur_lane_en;\n"
       << "    wire [S-1:0]  update_unit_en;\n";
    if (options.emit_clock_gating) {
        os << "    gating_controller #(.ND(ND), .NM(NM), .S(S)) u_gate (\n"
           << "        .clk(clk), .rst_n(rst_n), .cfg_valid(cfg_valid),\n"
           << "        .cfg_nd(cfg_nd), .cfg_nm(cfg_nm), .cfg_s(cfg_s),\n"
           << "        .dschur_lane_en(dschur_lane_en),\n"
           << "        .mschur_lane_en(mschur_lane_en),\n"
           << "        .update_unit_en(update_unit_en)\n"
           << "    );\n";
    } else {
        os << "    assign dschur_lane_en = {ND{1'b1}};\n"
           << "    assign mschur_lane_en = {NM{1'b1}};\n"
           << "    assign update_unit_en = {S{1'b1}};\n";
    }
    os << "    wire jrow_valid;\n"
       << "    wire [DW-1:0] jrow_data;\n"
       << "    jacobian_unit #(.DW(DW)) u_vjac (\n"
       << "        .clk(clk), .rst_n(rst_n),\n"
       << "        .feat_valid(in_valid), .feat_data(in_data),\n"
       << "        .kf_index(4'd0),\n"
       << "        .jrow_valid(jrow_valid), .jrow_data(jrow_data)\n"
       << "    );\n"
       << "    wire [2*DW-1:0] dschur_acc;\n"
       << "    dschur_unit #(.DW(DW), .LANES(ND)) u_dschur (\n"
       << "        .clk(clk), .rst_n(rst_n), .lane_en(dschur_lane_en),\n"
       << "        .a(jrow_data), .b(jrow_data), .acc0(dschur_acc)\n"
       << "    );\n"
       << "    wire [2*DW-1:0] mschur_acc;\n"
       << "    mschur_unit #(.DW(DW), .LANES(NM)) u_mschur (\n"
       << "        .clk(clk), .rst_n(rst_n), .lane_en(mschur_lane_en),\n"
       << "        .a(jrow_data), .b(jrow_data), .acc0(mschur_acc)\n"
       << "    );\n"
       << "    wire chol_valid;\n"
       << "    wire [DW-1:0] chol_l;\n"
       << "    cholesky_unit #(.DW(DW), .UPDATE_UNITS(S)) u_chol (\n"
       << "        .clk(clk), .rst_n(rst_n),\n"
       << "        .update_en(update_unit_en),\n"
       << "        .in_valid(jrow_valid),\n"
       << "        .pivot(dschur_acc[DW-1:0]),\n"
       << "        .column_in(mschur_acc[DW-1:0]),\n"
       << "        .out_valid(chol_valid), .l_out(chol_l)\n"
       << "    );\n"
       << "    assign out_valid = chol_valid;\n"
       << "    assign out_data  = chol_l;\n"
       << "endmodule\n";
    return os.str();
}

} // namespace archytas::synth
