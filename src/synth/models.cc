#include "synth/models.hh"

#include <algorithm>

#include "common/logging.hh"

namespace archytas::synth {

hw::HwConfig
highPerfConfig()
{
    return {28, 19, 97};
}

hw::HwConfig
lowPowerConfig()
{
    return {21, 8, 34};
}

LinearKnobModel
calibrateLinearModel(const hw::HwConfig &a, double va,
                     const hw::HwConfig &b, double vb,
                     double per_update_anchor)
{
    // With per_mac applied to nd + nm, the anchors give:
    //   base + ma * per_mac + sa * per_update = va
    //   base + mb * per_mac + sb * per_update = vb
    const double ma = static_cast<double>(a.nd + a.nm);
    const double mb = static_cast<double>(b.nd + b.nm);
    const double sa = static_cast<double>(a.s);
    const double sb = static_cast<double>(b.s);
    ARCHYTAS_ASSERT(ma != mb || sa != sb, "degenerate anchors");

    LinearKnobModel m;
    if (per_update_anchor >= 0.0) {
        // per_update fixed (e.g. from the paper's Fig. 13c sensitivity);
        // solve the remaining 2x2 system exactly.
        m.per_update = per_update_anchor;
        const double ra = va - sa * m.per_update;
        const double rb = vb - sb * m.per_update;
        m.per_mac = (ra - rb) / (ma - mb);
        m.base = ra - ma * m.per_mac;
    } else {
        // Close the third degree of freedom by centering the base in the
        // interval keeping both coefficients non-negative:
        //   per_update >= 0  <=>  base >= (ma*vb - mb*va) / (ma - mb)
        //   per_mac    >= 0  <=>  base <= (sa*vb - sb*va) / (sa - sb)
        // (assuming ma > mb and sa > sb, true for the Table 2 anchors).
        ARCHYTAS_ASSERT(ma > mb && sa > sb,
                        "anchor ordering assumption violated");
        const double lo =
            std::max(0.0, (ma * vb - mb * va) / (ma - mb));
        const double hi =
            std::min(std::min(va, vb), (sa * vb - sb * va) / (sa - sb));
        ARCHYTAS_ASSERT(lo <= hi, "infeasible calibration interval [",
                        lo, ", ", hi, "]");
        m.base = 0.5 * (lo + hi);
        // Solve the 2x2 system for the two slopes.
        const double det = ma * sb - mb * sa;
        ARCHYTAS_ASSERT(det != 0.0, "singular calibration system");
        const double ra = va - m.base;
        const double rb = vb - m.base;
        m.per_mac = (ra * sb - rb * sa) / det;
        m.per_update = (ma * rb - mb * ra) / det;
    }
    ARCHYTAS_ASSERT(m.base >= 0.0 && m.per_mac >= 0.0 &&
                        m.per_update >= 0.0,
                    "negative calibrated coefficient");
    // Both anchors must be reproduced exactly.
    ARCHYTAS_ASSERT(std::abs(m.eval(a) - va) < 1e-6 * std::max(1.0, va),
                    "anchor A not reproduced");
    ARCHYTAS_ASSERT(std::abs(m.eval(b) - vb) < 1e-6 * std::max(1.0, vb),
                    "anchor B not reproduced");
    return m;
}

ResourceModel
ResourceModel::calibrated()
{
    const hw::HwConfig hp = highPerfConfig();
    const hw::HwConfig lp = lowPowerConfig();

    // Table 2 absolute numbers (ZC706).
    ResourceModel rm;
    rm.models_[static_cast<std::size_t>(Resource::LUT)] =
        calibrateLinearModel(hp, 136432.0, lp, 95777.0);
    rm.models_[static_cast<std::size_t>(Resource::FF)] =
        calibrateLinearModel(hp, 163006.0, lp, 126670.0);
    rm.models_[static_cast<std::size_t>(Resource::BRAM)] =
        calibrateLinearModel(hp, 255.5, lp, 146.0);
    // DSP: Sec. 7.2 reports a 50% utilization increase (of 900 DSPs) as
    // s sweeps 1 -> 80, anchoring the per-Update slope at 450 / 79.
    rm.models_[static_cast<std::size_t>(Resource::DSP)] =
        calibrateLinearModel(hp, 849.0, lp, 442.0, 450.0 / 79.0);
    return rm;
}

ResourceVector
ResourceModel::usage(const hw::HwConfig &c) const
{
    ResourceVector out;
    for (std::size_t i = 0; i < kResourceCount; ++i)
        out[i] = models_[i].eval(c);
    return out;
}

ResourceVector
ResourceModel::utilization(const hw::HwConfig &c,
                           const FpgaPlatform &platform) const
{
    ResourceVector u = usage(c);
    for (std::size_t i = 0; i < kResourceCount; ++i)
        u[i] /= platform.capacity[i];
    return u;
}

bool
ResourceModel::fits(const hw::HwConfig &c,
                    const FpgaPlatform &platform) const
{
    const ResourceVector u = usage(c);
    for (std::size_t i = 0; i < kResourceCount; ++i) {
        // Exceeding even one resource type means the design cannot be
        // instantiated (Sec. 5).
        if (u[i] > platform.capacity[i])
            return false;
    }
    return true;
}

PowerModel
PowerModel::calibrated()
{
    // Anchors: the High-Perf design draws ~2 W more than Low-Power
    // (Sec. 7.4); the absolute level is set to match the Fig. 14 Pareto
    // range (~2.5 W to ~5 W).
    PowerModel pm;
    pm.model_ = calibrateLinearModel(highPerfConfig(), 5.0,
                                     lowPowerConfig(), 3.0);
    return pm;
}

LatencyModel::LatencyModel(slam::WindowWorkload workload,
                           hw::HwConstants env)
    : workload_(workload), env_(env)
{
}

double
LatencyModel::latencyMs(const hw::HwConfig &c,
                        std::size_t iterations) const
{
    const hw::Accelerator accel(c, env_);
    const hw::WindowTiming t = accel.windowTiming(workload_, iterations);
    return t.totalMs(env_);
}

} // namespace archytas::synth
