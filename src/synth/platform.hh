/**
 * @file
 * FPGA platform descriptions: the resource envelopes (R* in Eq. 11) of
 * the three Xilinx parts the paper evaluates — the primary Zynq-7000
 * ZC706 (Sec. 7.1) plus the Kintex-7 and Virtex-7 parts of Sec. 7.7.
 */

#ifndef ARCHYTAS_SYNTH_PLATFORM_HH
#define ARCHYTAS_SYNTH_PLATFORM_HH

#include <array>
#include <cstddef>
#include <string>

namespace archytas::synth {

/** The four FPGA resource types the synthesizer constrains (Sec. 5). */
enum class Resource
{
    LUT = 0,
    FF = 1,
    BRAM = 2,   //!< 36 Kb block count (half blocks count 0.5).
    DSP = 3,
};
constexpr std::size_t kResourceCount = 4;

const char *resourceName(Resource r);

/** Per-resource vector type. */
using ResourceVector = std::array<double, kResourceCount>;

/** One FPGA part. */
struct FpgaPlatform
{
    std::string name;
    ResourceVector capacity;   //!< Absolute available resources.

    double lut() const { return capacity[0]; }
    double ff() const { return capacity[1]; }
    double bram() const { return capacity[2]; }
    double dsp() const { return capacity[3]; }
};

/** Xilinx Zynq-7000 SoC ZC706 (XC7Z045): the paper's primary target. */
FpgaPlatform zc706();

/** Xilinx Kintex-7 XC7K160T (Sec. 7.7). */
FpgaPlatform kintex7_160t();

/** Xilinx Virtex-7 XC7VX690T (Sec. 7.7). */
FpgaPlatform virtex7_690t();

} // namespace archytas::synth

#endif // ARCHYTAS_SYNTH_PLATFORM_HH
