/**
 * @file
 * The synthesizer's analytical models (Sec. 5):
 *
 *  - Res(nd, nm, s) = R0 + nd Rd + nm Rm + s Rs per resource type
 *    (Eq. 16), calibrated so that the two published design points of
 *    Table 2 are reproduced exactly;
 *  - Power(nd, nm, s) = P0 + nd Pd + nm Pm + s Ps (Eq. 17), calibrated
 *    to the paper's reported ~2 W gap between the High-Perf and
 *    Low-Power designs;
 *  - Lat(nd, nm, s) (Eq. 13-15), delegated to the hardware block models.
 *
 * Calibration method (no FPGA toolchain available -- see DESIGN.md):
 * with Rd = Rm (the two Schur blocks instantiate the same MAC design),
 * each resource has three unknowns (base R0, per-MAC Rmac, per-Update
 * Rs) and Table 2 provides two equations. The third degree of freedom is
 * closed either by a paper-text anchor (the DSP utilization rises 50%
 * as s goes 1 -> 80, Sec. 7.2) or by centering R0 inside the interval
 * that keeps all coefficients non-negative.
 */

#ifndef ARCHYTAS_SYNTH_MODELS_HH
#define ARCHYTAS_SYNTH_MODELS_HH

#include "common/logging.hh"
#include "hw/accelerator.hh"
#include "hw/config.hh"
#include "synth/platform.hh"

namespace archytas::synth {

/** Linear per-knob cost model: base + nd*mac + nm*mac + s*update. */
struct LinearKnobModel
{
    double base = 0.0;
    double per_mac = 0.0;      //!< Applied to both nd and nm.
    double per_update = 0.0;   //!< Applied to s.

    double
    eval(const hw::HwConfig &c) const
    {
        return base +
               per_mac * static_cast<double>(c.nd + c.nm) +
               per_update * static_cast<double>(c.s);
    }
};

/**
 * Calibrates a LinearKnobModel from two (config, value) anchors.
 *
 * @param a, va  First anchor configuration and its metric value.
 * @param b, vb  Second anchor.
 * @param per_update_anchor  Optional fixed per_update coefficient
 *        (negative = unset); when unset the base is centered in the
 *        non-negativity interval.
 */
LinearKnobModel calibrateLinearModel(const hw::HwConfig &a, double va,
                                     const hw::HwConfig &b, double vb,
                                     double per_update_anchor = -1.0);

/** Table 2's two published design points (the calibration anchors). */
hw::HwConfig highPerfConfig();   //!< nd=28, nm=19, s=97.
hw::HwConfig lowPowerConfig();   //!< nd=21, nm=8,  s=34.

/** Eq. 16: the four per-resource models. */
class ResourceModel
{
  public:
    /** Calibrated against Table 2 on the ZC706 (the default). */
    static ResourceModel calibrated();

    /** Absolute resource usage of a configuration. */
    ResourceVector usage(const hw::HwConfig &c) const;

    /** Utilization fractions on a platform (1.0 = full). */
    ResourceVector utilization(const hw::HwConfig &c,
                               const FpgaPlatform &platform) const;

    /** True when the configuration fits the platform. */
    bool fits(const hw::HwConfig &c, const FpgaPlatform &platform) const;

    const LinearKnobModel &model(Resource r) const
    {
        return models_[static_cast<std::size_t>(r)];
    }

  private:
    std::array<LinearKnobModel, kResourceCount> models_;
};

/** Eq. 17: total accelerator power in watts. */
class PowerModel
{
  public:
    /** Calibrated to the published High-Perf/Low-Power power gap. */
    static PowerModel calibrated();

    double watts(const hw::HwConfig &c) const { return model_.eval(c); }

    /**
     * Power with run-time clock gating (Sec. 6.2): the customizable
     * blocks run at the gated configuration's provision while the base
     * power is unchanged.
     */
    double
    gatedWatts(const hw::HwConfig &built, const hw::HwConfig &gated) const
    {
        ARCHYTAS_ASSERT(gated.nd <= built.nd && gated.nm <= built.nm &&
                            gated.s <= built.s,
                        "gated configuration exceeds the built design");
        return model_.eval(gated);
    }

    const LinearKnobModel &model() const { return model_; }

  private:
    LinearKnobModel model_;
};

/** Eq. 13-15 wrapper: latency of a window workload in milliseconds. */
class LatencyModel
{
  public:
    explicit LatencyModel(slam::WindowWorkload workload,
                          hw::HwConstants env = {});

    /** End-to-end window latency in ms for Iter NLS iterations. */
    double latencyMs(const hw::HwConfig &c, std::size_t iterations) const;

    const slam::WindowWorkload &workload() const { return workload_; }

  private:
    slam::WindowWorkload workload_;
    hw::HwConstants env_;
};

} // namespace archytas::synth

#endif // ARCHYTAS_SYNTH_MODELS_HH
