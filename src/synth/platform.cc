#include "synth/platform.hh"

#include "common/logging.hh"

namespace archytas::synth {

const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::LUT:  return "LUT";
      case Resource::FF:   return "FF";
      case Resource::BRAM: return "BRAM";
      case Resource::DSP:  return "DSP";
    }
    ARCHYTAS_PANIC("unknown resource");
}

FpgaPlatform
zc706()
{
    // XC7Z045: 218,600 LUTs, 437,200 FFs, 545 36Kb BRAMs, 900 DSP48s.
    // These denominators reproduce Table 2's utilization percentages
    // exactly (e.g. 136,432 / 218,600 = 62.41%).
    return {"ZC706 (XC7Z045)", {218600.0, 437200.0, 545.0, 900.0}};
}

FpgaPlatform
kintex7_160t()
{
    // XC7K160T: 101,400 LUTs, 202,800 FFs, 325 36Kb BRAMs, 600 DSP48s.
    return {"Kintex-7 XC7K160T", {101400.0, 202800.0, 325.0, 600.0}};
}

FpgaPlatform
virtex7_690t()
{
    // XC7VX690T: 433,200 LUTs, 866,400 FFs, 1,470 36Kb BRAMs, 3,600
    // DSP48s.
    return {"Virtex-7 XC7VX690T", {433200.0, 866400.0, 1470.0, 3600.0}};
}

} // namespace archytas::synth
