/**
 * @file
 * Bump-pointer arena for hot-path scratch memory (docs/PERFORMANCE.md).
 *
 * The solver's per-frame assembly needs transient buffers whose sizes
 * depend on the window shape (shard partials, sparse-Schur segments).
 * Allocating them from the heap every frame dominated the assembly
 * profile; the arena instead hands out aligned slices of a few large
 * blocks and is reset between frames. Blocks are retained across
 * reset(), so a warmed-up arena serves every later frame with zero heap
 * traffic -- `blockAllocations()` exposes the heap-hit count so tests
 * can pin that down.
 *
 * Ownership rules: an arena belongs to exactly one scratch owner (an
 * estimator / session's SolverScratch, a marginalization scratch). It is
 * not thread-safe; parallel shards must carve their slices *before* the
 * parallel region starts, or own separate arenas. Memory returned by
 * allocate() is zero-initialized only on the first use of a block --
 * callers that need zeros must clear their slice.
 */

#ifndef ARCHYTAS_COMMON_ARENA_HH
#define ARCHYTAS_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace archytas::common {

/** Growable bump allocator; see the file comment for ownership rules. */
class Arena
{
  public:
    /** SIMD-friendly default alignment of every returned pointer. */
    static constexpr std::size_t kAlignment = 64;

    Arena() = default;
    /** Pre-sizes the first block (bytes may be 0). */
    explicit Arena(std::size_t initial_bytes);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Returns `bytes` of storage aligned to kAlignment. Falls back to a
     * fresh block (geometric growth) only when the active blocks are
     * exhausted; a steady-state caller that reset() between identical
     * frames never grows.
     */
    void *allocate(std::size_t bytes);

    /** Typed array helper; T must be trivially destructible. */
    template <typename T>
    T *
    allocateArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is never destructed");
        return static_cast<T *>(allocate(n * sizeof(T)));
    }

    /**
     * Rewinds every block to empty without releasing memory. Previously
     * returned pointers become dangling.
     */
    void reset();

    /** Bytes handed out since the last reset(). */
    std::size_t bytesInUse() const { return in_use_; }
    /** Total bytes owned across all blocks. */
    std::size_t capacity() const;
    /** Heap allocations performed over the arena's lifetime. */
    std::size_t blockAllocations() const { return block_allocations_; }
    /** Largest bytesInUse() ever observed (sizing diagnostics). */
    std::size_t highWater() const { return high_water_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Appends a block of at least `bytes` capacity. */
    Block &grow(std::size_t bytes);

    std::vector<Block> blocks_;
    std::size_t active_ = 0; //!< Index of the block currently bumping.
    std::size_t in_use_ = 0;
    std::size_t high_water_ = 0;
    std::size_t block_allocations_ = 0;
};

} // namespace archytas::common

#endif // ARCHYTAS_COMMON_ARENA_HH
