#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace archytas::parallel {

namespace {

/** Nesting depth of pool tasks on this thread. */
// archytas-analyzer: allow(global-state) -- per-thread nesting marker;
// it gates inline execution of nested regions (the mechanism that keeps
// per-session numerics schedule-independent) and never reaches results.
thread_local int region_depth = 0;

/** RAII region marker used around every task invocation. */
struct RegionGuard
{
    RegionGuard() { ++region_depth; }
    ~RegionGuard() { --region_depth; }
    RegionGuard(const RegionGuard &) = delete;
    RegionGuard &operator=(const RegionGuard &) = delete;
};

/** ARCHYTAS_THREADS, falling back to hardware concurrency; >= 1. */
std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("ARCHYTAS_THREADS")) {
        char *endp = nullptr;
        const unsigned long v = std::strtoul(env, &endp, 10);
        if (endp && *endp == '\0' && v >= 1 && v <= 1024)
            return static_cast<std::size_t>(v);
        ARCHYTAS_WARN("ignoring invalid ARCHYTAS_THREADS='", env,
                      "' (want an integer in [1, 1024])");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<std::size_t>(hw) : 1;
}

/**
 * The process-wide pool. Workers are spawned lazily on the first
 * parallel call that can use them and joined on resize / process exit.
 * One job runs at a time (nested calls run inline via the region
 * guard); the calling thread always participates in the job.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        // archytas-analyzer: allow(global-state) -- the one intentional
        // process-wide pool: all sessions share these workers, and the
        // disjoint-state contract (parallel.hh) makes results
        // independent of which worker runs which task.
        static Pool pool;
        return pool;
    }

    std::size_t
    size()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return size_;
    }

    void
    resize(std::size_t n)
    {
        ARCHYTAS_ASSERT(region_depth == 0,
                        "setThreadCount inside a parallel region");
        // Wait out any in-flight top-level job before retiring workers.
        std::lock_guard<std::mutex> job_lk(job_mutex_);
        joinWorkers();
        std::lock_guard<std::mutex> lk(mutex_);
        size_ = n == 0 ? defaultThreadCount() : n;
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &task)
    {
        if (n == 0)
            return;
        if (region_depth > 0 || n == 1 || size() == 1) {
            runInline(n, task);
            return;
        }

        // One top-level job at a time: concurrent calls from distinct
        // non-pool threads queue here instead of clobbering job_.
        std::lock_guard<std::mutex> job_lk(job_mutex_);

        Job job;
        job.n = n;
        job.task = &task;
        job.errors.resize(n);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            spawnWorkersLocked();
            job_ = &job;
            ++generation_;
        }
        work_cv_.notify_all();

        const std::size_t mine = drain(job);

        {
            std::unique_lock<std::mutex> lk(mutex_);
            job.completed += mine;
            done_cv_.wait(lk, [&] {
                return job.completed == job.n && job.active == 0;
            });
            job_ = nullptr;
        }
        for (std::size_t i = 0; i < n; ++i)
            if (job.errors[i])
                std::rethrow_exception(job.errors[i]);
    }

  private:
    struct Job
    {
        std::size_t n = 0;
        const std::function<void(std::size_t)> *task = nullptr;
        std::atomic<std::size_t> next{0};
        std::size_t completed = 0;   //!< Guarded by Pool::mutex_.
        std::size_t active = 0;      //!< Workers inside drain(); guarded.
        std::vector<std::exception_ptr> errors;
    };

    Pool() : size_(defaultThreadCount()) {}

    ~Pool() { joinWorkers(); }

    static void
    runInline(std::size_t n, const std::function<void(std::size_t)> &task)
    {
        RegionGuard guard;
        for (std::size_t i = 0; i < n; ++i)
            task(i);
    }

    /** Claims and executes tasks until the job is exhausted. */
    static std::size_t
    drain(Job &job)
    {
        RegionGuard guard;
        std::size_t done = 0;
        for (;;) {
            const std::size_t i =
                job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.n)
                break;
            try {
                (*job.task)(i);
            } catch (...) {
                job.errors[i] = std::current_exception();
            }
            ++done;
        }
        return done;
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mutex_);
        for (;;) {
            work_cv_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            Job *job = job_;
            ++job->active;
            lk.unlock();
            const std::size_t done = drain(*job);
            lk.lock();
            job->completed += done;
            --job->active;
            if (job->completed == job->n && job->active == 0)
                done_cv_.notify_all();
        }
    }

    void
    spawnWorkersLocked()
    {
        if (!workers_.empty() || size_ <= 1)
            return;
        workers_.reserve(size_ - 1);
        for (std::size_t i = 0; i + 1 < size_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    joinWorkers()
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto &w : workers_)
            w.join();
        workers_.clear();
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = false;
    }

    std::mutex job_mutex_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;          //!< Guarded by mutex_.
    std::uint64_t generation_ = 0; //!< Guarded by mutex_.
    bool stop_ = false;           //!< Guarded by mutex_.
    std::size_t size_ = 1;        //!< Guarded by mutex_.
};

} // namespace

std::size_t
threadCount()
{
    return Pool::instance().size();
}

void
setThreadCount(std::size_t n)
{
    Pool::instance().resize(n);
}

bool
inParallelRegion()
{
    return region_depth > 0;
}

void
runTasks(std::size_t n, const std::function<void(std::size_t)> &task)
{
    Pool::instance().run(n, task);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    // Small over-decomposition smooths uneven per-index work; since every
    // index writes disjoint state, the chunking has no numeric effect.
    const std::size_t chunks = std::min(n, threadCount() * 4);
    const std::size_t grain = (n + chunks - 1) / chunks;
    runTasks(chunks, [&](std::size_t c) {
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        for (std::size_t i = b; i < e; ++i)
            body(i);
    });
}

void
parallelForChunks(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)> &body)
{
    ARCHYTAS_ASSERT(grain > 0, "parallelForChunks: grain must be positive");
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const std::size_t chunks = (n + grain - 1) / grain;
    runTasks(chunks, [&](std::size_t c) {
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        body(b, e);
    });
}

} // namespace archytas::parallel
