/**
 * @file
 * End-to-end observability layer (docs/OBSERVABILITY.md): a process-wide
 * metrics registry plus a scoped-span tracer.
 *
 * Metrics come in three kinds:
 *
 *  - Counter: a monotonically increasing 64-bit integer (events, faults,
 *    iterations). Counters accumulate into per-thread shards and are
 *    merged by integer summation at snapshot time, so totals are exact
 *    and bit-identical at any thread count (the PR-3 determinism
 *    contract extends to telemetry).
 *  - Gauge: a last-written double (current Iter level, last final cost).
 *    Gauges are not sharded; they are intended for the orchestration
 *    thread.
 *  - Histogram: samples bucketed into a fixed log-scale layout
 *    (4 buckets per decade, 1e-9 .. 1e12, plus underflow/overflow), with
 *    exact count/min/max and a running sum. Bucket counts merge by
 *    integer summation. NaN samples are counted separately and never
 *    poison the moments.
 *
 * The tracer records named phases (frame ingest -> Jacobian ->
 * dSchur/mSchur -> Cholesky -> update; controller decide/reconfigure;
 * simulated-hardware windows) as RAII spans plus instant events carrying
 * numeric arguments (e.g. a controller decision's chosen Iter). Traces
 * export as Chrome trace-event JSON (chrome://tracing, Perfetto) and
 * metric snapshots as JSON/CSV; tools/archytas_trace_report.py
 * summarizes and validates both.
 *
 * Cost discipline: recording is gated on a relaxed atomic flag that is
 * off by default (enable with --telemetry-out via ScopedExport /
 * bench harness, the ARCHYTAS_TELEMETRY_OUT environment variable, or
 * setEnabled). Building with -DARCHYTAS_TELEMETRY=OFF compiles every
 * instrumentation macro to a no-op so hot paths carry zero overhead.
 *
 * Thread-safety: recording through the macros is safe from any thread
 * (per-thread shards, no locks on the hot path). Snapshots and exports
 * must run quiescently -- after parallel work has joined -- which every
 * in-tree call site satisfies (the pool's runTasks blocks until all
 * tasks finish).
 *
 * Naming conventions (docs/OBSERVABILITY.md): metrics are
 * `<subsystem>.<metric>` with subsystem one of estimator, solver, hw,
 * host, runtime, health. Wall-time-valued metrics carry a `_ms` suffix
 * and are exempt from the bit-identity contract (they measure the
 * clock); every other metric must be bit-identical at any thread count.
 *
 * Causal trace propagation (fleet observability, docs/OBSERVABILITY.md
 * section 6): a deterministic TraceContext -- session id, frame id, and
 * a flow id derived from both -- is installed per scope with
 * ARCHYTAS_TRACE_SCOPE. While a context is active, every span and
 * instant recorded on the thread is tagged with it (exported on a
 * per-session track), ARCHYTAS_FLOW_BEGIN/STEP/END emit Chrome
 * trace-event flow arcs (`ph:"s"/"t"/"f"`) linking the frame's journey
 * across threads and the async host-link boundary, and -- when the
 * context carries a FlightRecorder -- span begin/end markers, counter
 * deltas, and instants are mirrored into the session's postmortem ring
 * (flight_recorder.hh).
 */

#ifndef ARCHYTAS_COMMON_TELEMETRY_HH
#define ARCHYTAS_COMMON_TELEMETRY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#ifdef ARCHYTAS_DISABLE_TELEMETRY
#define ARCHYTAS_TELEMETRY_ENABLED 0
#else
#define ARCHYTAS_TELEMETRY_ENABLED 1
#endif

namespace archytas::telemetry {

/** True when recording is active (cheap relaxed-atomic read). */
bool enabled();

/** Turns recording on or off process-wide. */
void setEnabled(bool on);

// --------------------------------------------------------------------
// Metric handles
// --------------------------------------------------------------------

/** Fixed histogram layout: 4 log10 buckets per decade, 1e-9 .. 1e12. */
constexpr std::size_t kBucketsPerDecade = 4;
constexpr int kHistogramMinDecade = -9;
constexpr int kHistogramMaxDecade = 12;
constexpr std::size_t kHistogramBuckets =
    2 + kBucketsPerDecade *
            static_cast<std::size_t>(kHistogramMaxDecade -
                                     kHistogramMinDecade);

/** Monotonic event counter; exact at any thread count. */
class Counter
{
  public:
    explicit Counter(std::uint32_t id) : id_(id) {}
    /** Adds delta; dropped (free) while telemetry is disabled. */
    void add(std::uint64_t delta = 1);
    std::uint32_t id() const { return id_; }

  private:
    std::uint32_t id_;
};

/** Last-written scalar; intended for the orchestration thread. */
class Gauge
{
  public:
    explicit Gauge(std::uint32_t id) : id_(id) {}
    void set(double value);
    std::uint32_t id() const { return id_; }

  private:
    std::uint32_t id_;
};

/** Log-bucketed sample distribution; exact count/min/max/buckets. */
class Histogram
{
  public:
    explicit Histogram(std::uint32_t id) : id_(id) {}
    /** Records one sample; NaN is counted apart, never bucketed. */
    void record(double value);
    std::uint32_t id() const { return id_; }

    /** Bucket index for a value: 0 = underflow (v <= 0 or tiny), last =
     *  overflow; exact log10-scale in between. */
    static std::size_t bucketIndex(double value);
    /** Inclusive lower bound of a bucket (0 for the underflow bucket). */
    static double bucketLowerBound(std::size_t index);

  private:
    std::uint32_t id_;
};

/**
 * Registry lookups: one metric per name, created on first use. The
 * returned references stay valid for the process lifetime (reset()
 * clears values, never registrations), so call sites may cache them in
 * function-local statics -- the ARCHYTAS_COUNT_ADD family does exactly
 * that.
 */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name);

// --------------------------------------------------------------------
// Snapshots
// --------------------------------------------------------------------

struct CounterValue
{
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeValue
{
    std::string name;
    double value = 0.0;
    bool written = false;   //!< False until the first set().
};

struct HistogramValue
{
    std::string name;
    std::uint64_t count = 0;      //!< Finite samples recorded.
    std::uint64_t nan_count = 0;  //!< NaN samples (counted apart).
    double sum = 0.0;
    double min = 0.0;             //!< Valid when count > 0.
    double max = 0.0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

/** All metric values, each kind sorted by name. */
struct MetricsSnapshot
{
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/**
 * Merges every shard (live and retired) into one snapshot. Counter and
 * bucket merges are integer sums, so the result is independent of the
 * shard/merge order. Call quiescently (see file comment).
 */
MetricsSnapshot snapshotMetrics();

/**
 * Percentile estimate (p in [0, 100]) from a histogram's log-scale
 * buckets: nearest-rank bucket selection, linear interpolation inside
 * the winning bucket, clamped to the recorded [min, max]. Resolution is
 * bounded by the bucket width (4 per decade), which is enough for
 * latency tail reporting (p50/p95/p99). Returns 0 on an empty
 * histogram.
 */
double approxPercentile(const HistogramValue &h, double p);

// --------------------------------------------------------------------
// Tracing
// --------------------------------------------------------------------

/** One numeric argument attached to a trace event. */
struct TraceArg
{
    const char *name = nullptr;  //!< Must be a string literal.
    double value = 0.0;
};

constexpr std::size_t kMaxTraceArgs = 6;

/** Flow-event phase (Chrome trace-event `ph:"s"/"t"/"f"`). */
enum class FlowPhase : std::uint8_t
{
    None = 0,
    Start,   //!< ph "s": the arc leaves the enclosing slice.
    Step,    //!< ph "t": an intermediate hop.
    End,     //!< ph "f" (bp "e"): the arc lands on the enclosing slice.
};

/** One recorded span, instant, or flow event. */
struct TraceEvent
{
    const char *name = nullptr;      //!< String literal.
    const char *category = nullptr;  //!< String literal (subsystem).
    bool instant = false;            //!< Instant event vs complete span.
    FlowPhase flow = FlowPhase::None;
    std::int64_t start_ns = 0;       //!< Since the process trace epoch.
    std::int64_t duration_ns = 0;    //!< 0 for instant events.
    std::uint32_t tid = 0;           //!< Stable per-thread index.
    std::uint32_t arg_count = 0;
    std::array<TraceArg, kMaxTraceArgs> args{};
    // Causal tagging (valid when has_context).
    bool has_context = false;
    std::uint32_t session = 0;
    std::uint32_t frame = 0;
    std::uint64_t flow_id = 0;
};

// --------------------------------------------------------------------
// Causal trace propagation
// --------------------------------------------------------------------

class FlightRecorder;

/**
 * The causal identity of the work currently executing on a thread:
 * which session and which frame. Deterministically derived (no global
 * counter), so the same workload produces the same ids at any thread
 * count. The optional recorder mirrors span/counter/instant activity
 * into the session's flight ring.
 */
struct TraceContext
{
    std::uint32_t session = 0;
    std::uint32_t frame = 0;
    FlightRecorder *recorder = nullptr;

    /** Flow id binding every hop of this frame's journey: unique per
     *  (session, frame), monotone in frame within a session. */
    std::uint64_t
    flowId() const
    {
        return ((static_cast<std::uint64_t>(session) + 1) << 32) |
               static_cast<std::uint64_t>(frame);
    }
};

/**
 * Installs a TraceContext on the current thread for its lifetime
 * (stack discipline: the previous context is restored on destruction).
 * Use through ARCHYTAS_TRACE_SCOPE so disabled builds compile it away.
 */
class ScopedTraceContext
{
  public:
    ScopedTraceContext(std::uint32_t session, std::uint32_t frame,
                       FlightRecorder *recorder = nullptr);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext prev_;
    bool had_prev_;
};

/** The thread's active context, or nullptr outside any trace scope. */
const TraceContext *currentTraceContext();

/**
 * Records a flow event at the current time on the current thread,
 * carrying the active context's flow id. No-op without an active
 * context (there is nothing to link). Begin/end hops must use the same
 * name and category, or viewers will not join the arc.
 */
void flow(const char *category, const char *name, FlowPhase phase);

/** Mirrors a counter delta into the active context's flight recorder
 *  (no-op without one). Called by ARCHYTAS_COUNT_ADD. */
void flightNote(const char *name, double delta);

// --------------------------------------------------------------------
// Postmortem destination
// --------------------------------------------------------------------

/**
 * Directory where flight-recorder postmortem bundles are dumped when a
 * trigger fires (watchdog trip, hw fallback, admission reject). Set
 * explicitly, or implicitly by --telemetry-out / ARCHYTAS_TELEMETRY_OUT
 * activation. Empty disables automatic dumps.
 */
void setPostmortemDir(const std::string &dir);
std::string postmortemDir();

/**
 * RAII span: records one complete trace event covering its lifetime.
 * Name and category must be string literals (no copy is taken). Use
 * through ARCHYTAS_SPAN so disabled builds compile it away.
 */
class SpanGuard
{
  public:
    SpanGuard(const char *category, const char *name);
    ~SpanGuard();

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    const char *category_;
    const char *name_;
    std::int64_t start_ns_;
    bool active_;
};

/** Records an instant event with up to kMaxTraceArgs numeric args. */
void instant(const char *category, const char *name,
             std::initializer_list<TraceArg> args = {});

/**
 * All recorded events sorted by (start time, thread index). Call
 * quiescently.
 */
std::vector<TraceEvent> snapshotTrace();

// --------------------------------------------------------------------
// Export / lifecycle
// --------------------------------------------------------------------

/** Writes the trace as Chrome trace-event JSON. */
bool writeChromeTrace(const std::string &path);
/** Writes the metric snapshot as JSON. */
bool writeMetricsJson(const std::string &path);
/** Writes the metric snapshot as a flat CSV. */
bool writeMetricsCsv(const std::string &path);
/** Writes trace.json, metrics.json, metrics.csv under dir (created). */
bool exportAll(const std::string &dir);

/**
 * Clears every metric value and trace event (registrations survive, so
 * cached handles stay valid). Test hook; call quiescently.
 */
void reset();

/**
 * CLI adapter for example/bench binaries: strips `--telemetry-out
 * <dir>` from argv (so downstream argument parsing never sees it),
 * enables recording, and exports to the directory on destruction. When
 * the flag is absent, the ARCHYTAS_TELEMETRY_OUT environment variable
 * is honored the same way.
 */
class ScopedExport
{
  public:
    ScopedExport(int &argc, char **argv);
    ~ScopedExport();

    ScopedExport(const ScopedExport &) = delete;
    ScopedExport &operator=(const ScopedExport &) = delete;

    bool active() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace archytas::telemetry

// --------------------------------------------------------------------
// Instrumentation macros: free when disabled at run time, gone when
// disabled at build time (-DARCHYTAS_TELEMETRY=OFF).
// --------------------------------------------------------------------

#if ARCHYTAS_TELEMETRY_ENABLED

#define ARCHYTAS_TELEMETRY_CONCAT2(a, b) a##b
#define ARCHYTAS_TELEMETRY_CONCAT(a, b) ARCHYTAS_TELEMETRY_CONCAT2(a, b)

/** Scoped span: `ARCHYTAS_SPAN("estimator", "estimator.frame");`. */
#define ARCHYTAS_SPAN(category, name)                                        \
    const ::archytas::telemetry::SpanGuard ARCHYTAS_TELEMETRY_CONCAT(        \
        archytas_span_, __LINE__)                                            \
    {                                                                        \
        category, name                                                       \
    }

/** Instant event with optional `{ {"arg", value}, ... }` args. */
#define ARCHYTAS_INSTANT(category, name, ...)                                \
    do {                                                                     \
        if (::archytas::telemetry::enabled()) {                              \
            ::archytas::telemetry::instant(category, name,                   \
                                           {__VA_ARGS__});                   \
        }                                                                    \
    } while (0)

/** Counter add with a cached handle; `name` must be a string literal.
 *  Also mirrors the delta into the active trace context's flight
 *  recorder, so postmortem rings see every counter bump. */
#define ARCHYTAS_COUNT_ADD(name, delta)                                      \
    do {                                                                     \
        if (::archytas::telemetry::enabled()) {                              \
            static ::archytas::telemetry::Counter &archytas_counter_ =       \
                ::archytas::telemetry::counter(name);                        \
            archytas_counter_.add(delta);                                    \
            ::archytas::telemetry::flightNote(                               \
                name, static_cast<double>(delta));                           \
        }                                                                    \
    } while (0)

/** Gauge set with a cached handle. */
#define ARCHYTAS_GAUGE_SET(name, value)                                      \
    do {                                                                     \
        if (::archytas::telemetry::enabled()) {                              \
            static ::archytas::telemetry::Gauge &archytas_gauge_ =           \
                ::archytas::telemetry::gauge(name);                          \
            archytas_gauge_.set(value);                                      \
        }                                                                    \
    } while (0)

/** Histogram record with a cached handle. */
#define ARCHYTAS_HIST_RECORD(name, value)                                    \
    do {                                                                     \
        if (::archytas::telemetry::enabled()) {                              \
            static ::archytas::telemetry::Histogram &archytas_hist_ =        \
                ::archytas::telemetry::histogram(name);                      \
            archytas_hist_.record(value);                                    \
        }                                                                    \
    } while (0)

/** Installs a causal TraceContext for the enclosing scope:
 *  `ARCHYTAS_TRACE_SCOPE(session_id, frame_id, &recorder);`. */
#define ARCHYTAS_TRACE_SCOPE(session, frame, recorder)                       \
    const ::archytas::telemetry::ScopedTraceContext                          \
        ARCHYTAS_TELEMETRY_CONCAT(archytas_trace_scope_, __LINE__)           \
    {                                                                        \
        session, frame, recorder                                             \
    }

/** Flow arc hops; category/name must match across BEGIN/STEP/END. */
#define ARCHYTAS_FLOW_BEGIN(category, name)                                  \
    ::archytas::telemetry::flow(category, name,                              \
                                ::archytas::telemetry::FlowPhase::Start)
#define ARCHYTAS_FLOW_STEP(category, name)                                   \
    ::archytas::telemetry::flow(category, name,                              \
                                ::archytas::telemetry::FlowPhase::Step)
#define ARCHYTAS_FLOW_END(category, name)                                    \
    ::archytas::telemetry::flow(category, name,                              \
                                ::archytas::telemetry::FlowPhase::End)

#else // !ARCHYTAS_TELEMETRY_ENABLED

// The sizeof-based expansions keep operands syntactically alive without
// evaluating them (same discipline as common/contracts.hh).
#define ARCHYTAS_SPAN(category, name) static_cast<void>(0)
#define ARCHYTAS_INSTANT(category, name, ...) static_cast<void>(0)
#define ARCHYTAS_COUNT_ADD(name, delta) static_cast<void>(sizeof(delta))
#define ARCHYTAS_GAUGE_SET(name, value) static_cast<void>(sizeof(value))
#define ARCHYTAS_HIST_RECORD(name, value) static_cast<void>(sizeof(value))
#define ARCHYTAS_TRACE_SCOPE(session, frame, recorder)                       \
    static_cast<void>(sizeof(session) + sizeof(frame) + sizeof(recorder))
#define ARCHYTAS_FLOW_BEGIN(category, name) static_cast<void>(0)
#define ARCHYTAS_FLOW_STEP(category, name) static_cast<void>(0)
#define ARCHYTAS_FLOW_END(category, name) static_cast<void>(0)

#endif // ARCHYTAS_TELEMETRY_ENABLED

#endif // ARCHYTAS_COMMON_TELEMETRY_HH
