/**
 * @file
 * Small statistics helpers shared by the evaluation harness: mean, standard
 * deviation, RMSE, percentiles, and a streaming accumulator.
 */

#ifndef ARCHYTAS_COMMON_STATS_HH
#define ARCHYTAS_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace archytas {

/** Arithmetic mean; 0 for an empty sequence. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for fewer than 2 items. */
double stddev(const std::vector<double> &xs);

/** Root-mean-square of the elements; 0 for an empty sequence. */
double rms(const std::vector<double> &xs);

/** Root-mean-square error between two equal-length sequences. */
double rmse(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Linear-interpolated percentile.
 *
 * @param xs Samples; NaN entries are dropped before ranking (they have
 *           no order, so including them would corrupt the sort). An
 *           all-NaN or empty input yields 0.
 * @param p  Percentile in [0, 100]; out-of-range values are a caller
 *           bug (ARCHYTAS_DCHECK) and clamp in contract-free builds.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Streaming accumulator of count/mean/min/max/variance using Welford's
 * algorithm; cheap enough to keep per hardware block or per window.
 *
 * NaN samples are counted separately (nanCount()) and excluded from
 * the moments: one corrupt sample must not erase the statistics of
 * every healthy one. count() reports only the finite-ordered samples
 * folded into mean/min/max/variance.
 */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    /** NaN samples seen (excluded from all other statistics). */
    std::size_t nanCount() const { return nan_count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }
    /** Sample variance; 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    std::size_t nan_count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace archytas

#endif // ARCHYTAS_COMMON_STATS_HH
