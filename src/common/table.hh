/**
 * @file
 * Fixed-width console table printer used by the benchmark harness so every
 * reproduced table/figure prints in a uniform, diff-able format.
 */

#ifndef ARCHYTAS_COMMON_TABLE_HH
#define ARCHYTAS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace archytas {

/**
 * Accumulates rows of string cells and renders them with per-column
 * auto-sizing, a header rule, and an optional caption.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Renders the full table to a string. */
    std::string render(const std::string &caption = "") const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace archytas

#endif // ARCHYTAS_COMMON_TABLE_HH
