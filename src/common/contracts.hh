/**
 * @file
 * Runtime dimension/bounds contracts for the numerical kernels.
 *
 * The hardware simulator is bit-checked against the software MAP solver, so
 * a silent shape mismatch or out-of-range access in `linalg`/`hw` corrupts a
 * solve without any visible failure. These macros make such errors fail
 * loudly at the call site in checked builds, and compile to nothing in
 * Release builds so the hot kernels pay no cost in production.
 *
 * Contract checks are on by default and disabled when the build defines
 * ARCHYTAS_DISABLE_CONTRACTS (the top-level CMakeLists does this for
 * CMAKE_BUILD_TYPE=Release, overridable with -DARCHYTAS_CONTRACTS=ON/OFF).
 *
 * Contract violations are bugs in the caller, never user errors, so all
 * three macros panic (abort) through ARCHYTAS_PANIC rather than throw.
 */

#ifndef ARCHYTAS_COMMON_CONTRACTS_HH
#define ARCHYTAS_COMMON_CONTRACTS_HH

#include "common/logging.hh"

#ifdef ARCHYTAS_DISABLE_CONTRACTS
#define ARCHYTAS_CONTRACTS_ENABLED 0
#else
#define ARCHYTAS_CONTRACTS_ENABLED 1
#endif

#if ARCHYTAS_CONTRACTS_ENABLED

/**
 * Debug-mode invariant check: like ARCHYTAS_ASSERT but compiled out in
 * Release. Use for preconditions on hot paths where the always-on assert
 * would dominate the kernel's runtime.
 */
#define ARCHYTAS_DCHECK(cond, ...)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ARCHYTAS_PANIC("contract violated: " #cond " ", ##__VA_ARGS__); \
        }                                                                    \
    } while (0)

/**
 * Checks that two dimension expressions agree, reporting both values.
 * `what` names the operation (e.g. "cholesky", "Matrix::operator+=").
 */
#define ARCHYTAS_CHECK_DIM(what, actual, expected)                           \
    do {                                                                     \
        const auto archytas_dim_actual_ = (actual);                          \
        const auto archytas_dim_expected_ = (expected);                      \
        if (archytas_dim_actual_ != archytas_dim_expected_) {                \
            ARCHYTAS_PANIC(what, ": dimension mismatch, got ",               \
                           archytas_dim_actual_, ", expected ",              \
                           archytas_dim_expected_);                          \
        }                                                                    \
    } while (0)

/**
 * Checks that `idx` is a valid index into a container of size `limit`
 * (i.e. idx < limit), reporting both on failure.
 */
#define ARCHYTAS_CHECK_BOUNDS(what, idx, limit)                              \
    do {                                                                     \
        const auto archytas_bounds_idx_ = (idx);                             \
        const auto archytas_bounds_limit_ = (limit);                         \
        if (!(archytas_bounds_idx_ < archytas_bounds_limit_)) {              \
            ARCHYTAS_PANIC(what, ": index ", archytas_bounds_idx_,           \
                           " out of range [0, ", archytas_bounds_limit_,     \
                           ")");                                             \
        }                                                                    \
    } while (0)

#else // !ARCHYTAS_CONTRACTS_ENABLED

// The sizeof-based expansions keep operands syntactically alive (no
// unused-variable warnings under -Werror) without evaluating them.
#define ARCHYTAS_DCHECK(cond, ...)                                           \
    static_cast<void>(sizeof((cond) ? 1 : 0))
#define ARCHYTAS_CHECK_DIM(what, actual, expected)                           \
    static_cast<void>(sizeof((actual) == (expected) ? 1 : 0))
#define ARCHYTAS_CHECK_BOUNDS(what, idx, limit)                              \
    static_cast<void>(sizeof((idx) < (limit) ? 1 : 0))

#endif // ARCHYTAS_CONTRACTS_ENABLED

#endif // ARCHYTAS_COMMON_CONTRACTS_HH
