/**
 * @file
 * Deterministic parallel execution layer (docs/PERFORMANCE.md).
 *
 * A process-wide std::thread pool sized from the ARCHYTAS_THREADS
 * environment variable (default: hardware concurrency) behind two
 * primitives with a hard *determinism contract*: results are
 * bit-identical at any thread count, including 1.
 *
 *  - parallelFor / parallelForChunks: each index (or chunk) must write
 *    disjoint state. Because no two tasks touch the same output, the
 *    scheduling order cannot influence the result and determinism is
 *    automatic.
 *  - mapReduceOrdered: reductions. The range is cut into fixed-size
 *    chunks whose boundaries depend only on the range and the caller's
 *    grain -- never on the thread count -- each chunk accumulates into
 *    its own zero-initialized partial, and partials are merged
 *    *sequentially in chunk order* on the calling thread. Floating-point
 *    accumulation therefore always associates identically.
 *
 * The hardware simulator is bit-checked against the software solver, so
 * this contract is non-negotiable; tests/slam/test_determinism.cc holds
 * it down. Raw std::thread/std::async are banned outside this file by
 * the `raw-thread` lint rule (tools/archytas_lint.py).
 *
 * Nested parallel regions are guarded: a parallel primitive invoked from
 * inside a pool task runs inline on the calling thread (same chunking,
 * same merge order), so composing parallel layers can never deadlock the
 * pool and never changes results.
 *
 * Exceptions thrown by tasks are captured and rethrown to the caller;
 * when several chunks throw, the exception of the lowest-indexed chunk
 * wins, so the reported failure is deterministic too.
 */

#ifndef ARCHYTAS_COMMON_PARALLEL_HH
#define ARCHYTAS_COMMON_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace archytas::parallel {

/** Compute threads the pool currently targets (>= 1). */
std::size_t threadCount();

/**
 * Overrides the pool size (test hook and programmatic control); 0
 * restores the ARCHYTAS_THREADS / hardware-concurrency default. Existing
 * workers are joined before the new size takes effect. Must not be
 * called from inside a parallel region.
 */
void setThreadCount(std::size_t n);

/** True while the calling thread executes inside a pool task. */
bool inParallelRegion();

/**
 * Executes task(0) .. task(n-1) across the pool (the calling thread
 * participates). Scheduling order is unspecified; tasks must write
 * disjoint state. Blocks until every task finished; rethrows the
 * lowest-indexed captured exception, if any. Runs inline when the pool
 * has one thread, when n <= 1, or when called from inside a region.
 */
void runTasks(std::size_t n, const std::function<void(std::size_t)> &task);

/**
 * Parallel loop over [begin, end). `body(i)` must only write state no
 * other index writes; under that contract the result is independent of
 * the schedule and therefore deterministic at any thread count.
 */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body);

/**
 * Chunked parallel loop: `body(b, e)` receives half-open sub-ranges of
 * [begin, end) of at most `grain` indices. Chunk boundaries depend only
 * on (begin, end, grain). Same disjoint-writes contract as parallelFor.
 */
void parallelForChunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &body);

/**
 * Deterministic chunked map-reduce over [begin, end).
 *
 *  - make() produces a zero partial (one per chunk);
 *  - accumulate(partial, i) folds index i into its chunk's partial;
 *  - merge(std::move(partial)) is invoked on the *calling* thread,
 *    sequentially, in increasing chunk order.
 *
 * Chunk boundaries depend only on (begin, end, grain), so the exact
 * association of every floating-point sum -- and hence the result bit
 * pattern -- is identical at any thread count.
 */
template <typename MakeFn, typename AccumulateFn, typename MergeFn>
void
mapReduceOrdered(std::size_t begin, std::size_t end, std::size_t grain,
                 MakeFn &&make, AccumulateFn &&accumulate, MergeFn &&merge)
{
    ARCHYTAS_ASSERT(grain > 0, "mapReduceOrdered: grain must be positive");
    if (begin >= end)
        return;
    using Partial = std::decay_t<decltype(make())>;
    const std::size_t n = end - begin;
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<std::optional<Partial>> parts(chunks);
    runTasks(chunks, [&](std::size_t c) {
        Partial p = make();
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        for (std::size_t i = b; i < e; ++i)
            accumulate(p, i);
        parts[c].emplace(std::move(p));
    });
    for (std::size_t c = 0; c < chunks; ++c)
        merge(std::move(*parts[c]));
}

} // namespace archytas::parallel

#endif // ARCHYTAS_COMMON_PARALLEL_HH
