#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/contracts.hh"
#include "common/logging.hh"

namespace archytas {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
rms(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x * x;
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
rmse(const std::vector<double> &a, const std::vector<double> &b)
{
    ARCHYTAS_ASSERT(a.size() == b.size(), "rmse: size mismatch ", a.size(),
                    " vs ", b.size());
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    ARCHYTAS_DCHECK(p >= 0.0 && p <= 100.0,
                    "percentile: p out of [0, 100]: ", p);
    // NaN has no rank; keeping it would violate sort's strict weak
    // ordering and scramble the whole ranking.
    xs.erase(std::remove_if(xs.begin(), xs.end(),
                            [](double x) { return std::isnan(x); }),
             xs.end());
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (p <= 0.0)
        return xs.front();
    if (p >= 100.0)
        return xs.back();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size())
        return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

void
RunningStats::add(double x)
{
    if (std::isnan(x)) {
        // Counted apart: one corrupt sample must not erase the
        // statistics of every healthy one (see stats.hh).
        ++nan_count_;
        return;
    }
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace archytas
