/**
 * @file
 * Deterministic random-number utilities. Every stochastic component in the
 * repository draws from an explicitly seeded Rng so that datasets, tests
 * and benchmarks are reproducible run-to-run.
 */

#ifndef ARCHYTAS_COMMON_RNG_HH
#define ARCHYTAS_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace archytas {

/**
 * A seeded Mersenne-Twister wrapper with convenience draws. Copyable so a
 * component can fork an independent stream from a parent seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Gaussian draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        if (stddev <= 0.0)
            return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Derive an independent child stream (e.g., per trace, per window). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace archytas

#endif // ARCHYTAS_COMMON_RNG_HH
