#include "common/logging.hh"

#include <stdexcept>

namespace archytas {
namespace detail {

void
emitMessage(std::string_view prefix, const std::string &message,
            const char *file, int line)
{
    std::cerr << prefix << ": " << message << " (" << file << ":" << line
              << ")\n";
}

void
panicImpl(const std::string &message, const char *file, int line)
{
    emitMessage("panic", message, file, line);
    std::abort();
}

void
fatalImpl(const std::string &message, const char *file, int line)
{
    emitMessage("fatal", message, file, line);
    // Throw instead of exit(1) so that library consumers (and tests) can
    // observe user-error conditions; uncaught it still terminates.
    throw std::runtime_error(message);
}

void
warnImpl(const std::string &message, const char *file, int line)
{
    emitMessage("warn", message, file, line);
}

void
informImpl(const std::string &message)
{
    std::cerr << "info: " << message << "\n";
}

} // namespace detail
} // namespace archytas
