/**
 * @file
 * Deterministic fault-injection plans for the host-FPGA localization
 * loop. The paper's run-time system (Sec. 6.2) assumes every window's
 * DMA completes, every solve converges, and the front-end always
 * delivers features; deployed systems see dropped frames, sensor gaps,
 * link stalls and diverging solves. A FaultPlan schedules such faults by
 * sliding-window index so the recovery machinery (host-link retry,
 * software fallback, estimator divergence recovery, controller
 * degraded-window policy) can be exercised reproducibly: every
 * corruption draw comes from an Rng forked deterministically from the
 * plan seed and the event identity, so a failing run replays exactly.
 * See docs/ROBUSTNESS.md for the fault model and recovery policies.
 */

#ifndef ARCHYTAS_COMMON_FAULT_HH
#define ARCHYTAS_COMMON_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace archytas {

/** The fault classes the framework can inject. */
enum class FaultKind
{
    /** Host-FPGA DMA misses its deadline for `count` attempts. */
    DmaTimeout,
    /** Link degrades: transfers take `magnitude` x their nominal time. */
    DmaStall,
    /** `count` bit-flips corrupt the window's accelerator result words. */
    BitFlip,
    /** Camera frame lost: the window receives no visual observations. */
    DroppedFrame,
    /** IMU samples covering the frame interval are lost. */
    ImuGap,
    /** Front-end delivers zero features for `count` consecutive frames. */
    ZeroFeatures,
    /** `magnitude` fraction of the frame's observations become wrong
     *  correspondences (uniform random in-image pixels). */
    OutlierBurst,
};

/** Human-readable fault-class name (for logs and reports). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    std::size_t window = 0;   //!< Sliding-window (frame) index it fires at.
    FaultKind kind = FaultKind::DmaTimeout;
    /** Per-kind multiplicity: failing DMA attempts, bit-flips, or
     *  consecutive affected frames (see FaultKind). */
    std::size_t count = 1;
    /** Per-kind magnitude: stall factor or outlier fraction. */
    double magnitude = 0.0;
};

/**
 * A reproducible schedule of faults, queried by window index. An empty
 * plan (the default) injects nothing, so fault-aware code paths can take
 * a plan unconditionally.
 */
class FaultPlan
{
  public:
    /** An empty plan: no faults. */
    FaultPlan() = default;

    /** @param seed   Seed for all corruption draws (bit positions,
     *                outlier pixels); independent of the event list.
     *  @param events The schedule; sorted internally by window. */
    FaultPlan(std::uint64_t seed, std::vector<FaultEvent> events);

    /** Per-window probabilities for randomized(). */
    struct RandomRates
    {
        double dma_timeout = 0.0;
        double dma_stall = 0.0;
        double bit_flip = 0.0;
        double dropped_frame = 0.0;
        double imu_gap = 0.0;
        double zero_features = 0.0;
        double outlier_burst = 0.0;
        /** Outlier fraction used by generated OutlierBurst events. */
        double outlier_fraction = 0.3;
        /** Stall factor used by generated DmaStall events. */
        double stall_factor = 8.0;
    };

    /**
     * Draws a random plan: each window is independently afflicted by
     * each fault class with the given probability. Deterministic in the
     * seed.
     */
    static FaultPlan randomized(std::uint64_t seed, std::size_t windows,
                                const RandomRates &rates);

    bool empty() const { return events_.empty(); }
    std::size_t eventCount() const { return events_.size(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /** First event of the given kind at the window, or nullptr. */
    const FaultEvent *find(std::size_t window, FaultKind kind) const;

    /** True when an event of the kind fires at the window (including a
     *  multi-frame event whose [window, window + count) span covers
     *  it). */
    bool has(std::size_t window, FaultKind kind) const;

    /** All events firing exactly at the window. */
    std::vector<FaultEvent> at(std::size_t window) const;

    /**
     * An independent deterministic random stream for one event's
     * corruption draws: the same plan seed and event always produce the
     * same corruption, regardless of query order.
     */
    Rng rngFor(const FaultEvent &event) const;

    /** One line per event (for logs and test diagnostics). */
    std::string toString() const;

  private:
    std::uint64_t seed_ = 0;
    std::vector<FaultEvent> events_;   //!< Sorted by window.
};

} // namespace archytas

#endif // ARCHYTAS_COMMON_FAULT_HH
