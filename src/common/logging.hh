/**
 * @file
 * Status-message and error-termination helpers, modelled on gem5's
 * logging discipline: panic() for internal invariant violations (bugs),
 * fatal() for user errors (bad configuration), warn()/inform() for
 * non-fatal diagnostics.
 */

#ifndef ARCHYTAS_COMMON_LOGGING_HH
#define ARCHYTAS_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace archytas {

namespace detail {

/** Formats "<prefix>: <message> (<file>:<line>)" onto stderr. */
void emitMessage(std::string_view prefix, const std::string &message,
                 const char *file, int line);

/** Concatenates all arguments using operator<< into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &message, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &message, const char *file,
                            int line);
void warnImpl(const std::string &message, const char *file, int line);
void informImpl(const std::string &message);

} // namespace detail

} // namespace archytas

/**
 * Terminate because an internal invariant was violated; this indicates a
 * bug in Archytas itself, never a user error.
 */
#define ARCHYTAS_PANIC(...)                                                  \
    ::archytas::detail::panicImpl(::archytas::detail::concat(__VA_ARGS__),   \
                                  __FILE__, __LINE__)

/**
 * Terminate because of an unrecoverable user error (invalid configuration,
 * infeasible constraints, malformed input).
 */
#define ARCHYTAS_FATAL(...)                                                  \
    ::archytas::detail::fatalImpl(::archytas::detail::concat(__VA_ARGS__),   \
                                  __FILE__, __LINE__)

/** Warn about suspicious but survivable conditions. */
#define ARCHYTAS_WARN(...)                                                   \
    ::archytas::detail::warnImpl(::archytas::detail::concat(__VA_ARGS__),    \
                                 __FILE__, __LINE__)

/** Informational status message. */
#define ARCHYTAS_INFORM(...)                                                 \
    ::archytas::detail::informImpl(::archytas::detail::concat(__VA_ARGS__))

/** Assert that cond holds; panics (bug) otherwise. */
#define ARCHYTAS_ASSERT(cond, ...)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ARCHYTAS_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);   \
        }                                                                    \
    } while (0)

#endif // ARCHYTAS_COMMON_LOGGING_HH
