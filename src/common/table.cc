#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace archytas {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    ARCHYTAS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ARCHYTAS_ASSERT(cells.size() == headers_.size(),
                    "row arity ", cells.size(), " != header arity ",
                    headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::render(const std::string &caption) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    if (!caption.empty())
        os << "== " << caption << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace archytas
