#include "common/telemetry.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "common/flight_recorder.hh"
#include "common/logging.hh"

namespace archytas::telemetry {

namespace {

/** Per-histogram shard state; merged by exact integer/min/max folds. */
struct HistShard
{
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t nan_count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void
    record(double v)
    {
        if (std::isnan(v)) {
            ++nan_count;
            return;
        }
        ++buckets[Histogram::bucketIndex(v)];
        if (count == 0) {
            min = max = v;
        } else {
            min = std::min(min, v);
            max = std::max(max, v);
        }
        ++count;
        sum += v;
    }

    void
    fold(HistShard &into) const
    {
        for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            into.buckets[b] += buckets[b];
        if (count > 0) {
            if (into.count == 0) {
                into.min = min;
                into.max = max;
            } else {
                into.min = std::min(into.min, min);
                into.max = std::max(into.max, max);
            }
        }
        into.count += count;
        into.nan_count += nan_count;
        into.sum += sum;
    }
};

struct Shard;

/** The process-wide registry behind the public handle API. */
struct Registry
{
    std::mutex mu;
    std::atomic<bool> enabled{false};

    std::map<std::string, std::uint32_t, std::less<>> counter_ids;
    std::map<std::string, std::uint32_t, std::less<>> gauge_ids;
    std::map<std::string, std::uint32_t, std::less<>> histogram_ids;
    std::deque<Counter> counters;       // Stable handle storage.
    std::deque<Gauge> gauges;
    std::deque<Histogram> histograms;

    std::vector<double> gauge_values;
    std::vector<std::uint8_t> gauge_written;

    // Totals folded in from destroyed threads' shards.
    std::vector<std::uint64_t> retired_counters;
    std::vector<HistShard> retired_hists;
    std::vector<TraceEvent> retired_events;

    std::vector<Shard *> shards;
    std::uint32_t next_tid = 0;

    std::string postmortem_dir;   //!< Auto-dump target; empty = off.
};

Registry &
registry()
{
    // archytas-analyzer: allow(global-state) -- the process-wide metric
    // registry is observability, not results: merges are
    // order-independent integer sums, and _ms metrics are exempt from
    // the bit-identity contract (docs/OBSERVABILITY.md).
    static Registry r;
    return r;
}

/** Per-thread metric/trace buffers; no locks on the record path. */
struct Shard
{
    std::vector<std::uint64_t> counters;
    std::vector<HistShard> hists;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;

    Shard()
    {
        Registry &r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        tid = r.next_tid++;
        r.shards.push_back(this);
    }

    ~Shard()
    {
        Registry &r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        foldLocked(r);
        r.shards.erase(std::remove(r.shards.begin(), r.shards.end(),
                                   this),
                       r.shards.end());
    }

    /** Folds this shard's values into the registry's retired totals. */
    void
    foldLocked(Registry &r)
    {
        if (r.retired_counters.size() < counters.size())
            r.retired_counters.resize(counters.size(), 0);
        for (std::size_t i = 0; i < counters.size(); ++i)
            r.retired_counters[i] += counters[i];
        counters.clear();
        if (r.retired_hists.size() < hists.size())
            r.retired_hists.resize(hists.size());
        for (std::size_t i = 0; i < hists.size(); ++i)
            hists[i].fold(r.retired_hists[i]);
        hists.clear();
        r.retired_events.insert(r.retired_events.end(), events.begin(),
                                events.end());
        events.clear();
    }
};

Shard &
shard()
{
    // archytas-analyzer: allow(global-state) -- per-thread metric
    // buffer: threads never share a shard, and snapshotMetrics() folds
    // shards with order-independent sums.
    static thread_local Shard s;
    return s;
}

/** The thread's active TraceContext (stack top) and whether one is
 *  installed. */
struct ContextSlot
{
    TraceContext ctx;
    bool active = false;
};

ContextSlot &
contextSlot()
{
    // archytas-analyzer: allow(global-state) -- per-thread causal
    // context: deterministically derived from (session, frame), scoped
    // with strict stack discipline, and never shared across threads.
    static thread_local ContextSlot slot;
    return slot;
}

std::int64_t
nowNs()
{
    // One shared epoch so timestamps from every thread line up.
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Where the environment-variable activation exports to at exit. */
std::string &
envExportDir()
{
    // archytas-analyzer: allow(global-state) -- export destination of
    // the atexit hook; written once during telemetry activation, read
    // once at process exit, never on a result path.
    static std::string dir;
    return dir;
}

void
exportAtExit()
{
    exportAll(envExportDir());
}

/**
 * ARCHYTAS_TELEMETRY_OUT=<dir> turns recording on at load time and
 * exports at normal process exit -- the hook test binaries (e.g. the
 * fault-recovery suite in CI) use, since they never parse argv.
 */
struct EnvActivation
{
    EnvActivation()
    {
        const char *dir = std::getenv("ARCHYTAS_TELEMETRY_OUT");
        if (dir != nullptr && *dir != '\0') {
            envExportDir() = dir;
            setEnabled(true);
            setPostmortemDir(dir);
            std::atexit(exportAtExit);
        }
    }
};

const EnvActivation env_activation;

} // namespace

bool
enabled()
{
    return registry().enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    registry().enabled.store(on, std::memory_order_relaxed);
}

// --------------------------------------------------------------------
// Handles
// --------------------------------------------------------------------

void
Counter::add(std::uint64_t delta)
{
    if (!enabled())
        return;
    Shard &s = shard();
    if (s.counters.size() <= id_)
        s.counters.resize(id_ + 1, 0);
    s.counters[id_] += delta;
}

void
Gauge::set(double value)
{
    if (!enabled())
        return;
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (r.gauge_values.size() <= id_) {
        r.gauge_values.resize(id_ + 1, 0.0);
        r.gauge_written.resize(id_ + 1, 0);
    }
    r.gauge_values[id_] = value;
    r.gauge_written[id_] = 1;
}

void
Histogram::record(double value)
{
    if (!enabled())
        return;
    Shard &s = shard();
    if (s.hists.size() <= id_)
        s.hists.resize(id_ + 1);
    s.hists[id_].record(value);
}

std::size_t
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0))
        return 0;   // Non-positive (and NaN, though callers filter it).
    const double scaled =
        std::floor(std::log10(value) *
                   static_cast<double>(kBucketsPerDecade));
    const auto idx = static_cast<std::int64_t>(scaled) +
                     static_cast<std::int64_t>(kBucketsPerDecade) *
                         (-kHistogramMinDecade) +
                     1;
    if (idx < 1)
        return 0;   // Below 1e-9: underflow.
    if (idx >= static_cast<std::int64_t>(kHistogramBuckets) - 1)
        return kHistogramBuckets - 1;   // >= 1e12: overflow.
    return static_cast<std::size_t>(idx);
}

double
Histogram::bucketLowerBound(std::size_t index)
{
    if (index == 0)
        return 0.0;
    const auto exponent =
        (static_cast<double>(index) - 1.0) /
            static_cast<double>(kBucketsPerDecade) +
        static_cast<double>(kHistogramMinDecade);
    return std::pow(10.0, exponent);
}

namespace {

template <typename Handle>
Handle &
lookup(std::map<std::string, std::uint32_t, std::less<>> &ids,
       std::deque<Handle> &storage, std::string_view name)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = ids.find(name);
    if (it != ids.end())
        return storage[it->second];
    const auto id = static_cast<std::uint32_t>(storage.size());
    ids.emplace(std::string(name), id);
    storage.emplace_back(id);
    return storage.back();
}

} // namespace

Counter &
counter(std::string_view name)
{
    Registry &r = registry();
    return lookup(r.counter_ids, r.counters, name);
}

Gauge &
gauge(std::string_view name)
{
    Registry &r = registry();
    return lookup(r.gauge_ids, r.gauges, name);
}

Histogram &
histogram(std::string_view name)
{
    Registry &r = registry();
    return lookup(r.histogram_ids, r.histograms, name);
}

// --------------------------------------------------------------------
// Snapshots
// --------------------------------------------------------------------

MetricsSnapshot
snapshotMetrics()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);

    // Merge: retired totals plus every live shard. Counters and bucket
    // counts are integer sums, so the shard order cannot matter.
    std::vector<std::uint64_t> counters = r.retired_counters;
    counters.resize(r.counters.size(), 0);
    std::vector<HistShard> hists = r.retired_hists;
    hists.resize(r.histograms.size());
    for (const Shard *s : r.shards) {
        for (std::size_t i = 0; i < s->counters.size(); ++i)
            counters[i] += s->counters[i];
        for (std::size_t i = 0; i < s->hists.size(); ++i)
            s->hists[i].fold(hists[i]);
    }

    MetricsSnapshot snap;
    for (const auto &[name, id] : r.counter_ids)
        snap.counters.push_back({name, counters[id]});
    for (const auto &[name, id] : r.gauge_ids) {
        GaugeValue g;
        g.name = name;
        if (id < r.gauge_values.size()) {
            g.value = r.gauge_values[id];
            g.written = r.gauge_written[id] != 0;
        }
        snap.gauges.push_back(std::move(g));
    }
    for (const auto &[name, id] : r.histogram_ids) {
        HistogramValue h;
        h.name = name;
        const HistShard &s = hists[id];
        h.count = s.count;
        h.nan_count = s.nan_count;
        h.sum = s.sum;
        h.min = s.min;
        h.max = s.max;
        h.buckets = s.buckets;
        snap.histograms.push_back(std::move(h));
    }
    // std::map iteration is already name-sorted.
    return snap;
}

double
approxPercentile(const HistogramValue &h, double p)
{
    if (h.count == 0)
        return 0.0;
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    // Nearest-rank: the 1-based index of the percentile sample.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(
               clamped / 100.0 * static_cast<double>(h.count))));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        const std::uint64_t n = h.buckets[b];
        if (n == 0)
            continue;
        if (cum + n >= rank) {
            const double lo = Histogram::bucketLowerBound(b);
            const double hi = b + 1 < h.buckets.size()
                                  ? Histogram::bucketLowerBound(b + 1)
                                  : h.max;
            // Samples are assumed uniform inside the bucket; place the
            // rank at its midpoint offset to avoid biasing toward the
            // bucket edges.
            const double frac = (static_cast<double>(rank - cum) - 0.5) /
                                static_cast<double>(n);
            return std::min(std::max(lo + (hi - lo) * frac, h.min),
                            h.max);
        }
        cum += n;
    }
    return h.max;
}

// --------------------------------------------------------------------
// Causal trace propagation
// --------------------------------------------------------------------

ScopedTraceContext::ScopedTraceContext(std::uint32_t session,
                                       std::uint32_t frame,
                                       FlightRecorder *recorder)
{
    ContextSlot &slot = contextSlot();
    prev_ = slot.ctx;
    had_prev_ = slot.active;
    slot.ctx = TraceContext{session, frame, recorder};
    slot.active = true;
}

ScopedTraceContext::~ScopedTraceContext()
{
    ContextSlot &slot = contextSlot();
    slot.ctx = prev_;
    slot.active = had_prev_;
}

const TraceContext *
currentTraceContext()
{
    const ContextSlot &slot = contextSlot();
    return slot.active ? &slot.ctx : nullptr;
}

namespace {

/** Stamps the active context (if any) onto a trace event. */
void
tagContext(TraceEvent &e)
{
    const TraceContext *ctx = currentTraceContext();
    if (ctx == nullptr)
        return;
    e.has_context = true;
    e.session = ctx->session;
    e.frame = ctx->frame;
    e.flow_id = ctx->flowId();
}

} // namespace

void
flow(const char *category, const char *name, FlowPhase phase)
{
    if (!enabled() || phase == FlowPhase::None)
        return;
    const TraceContext *ctx = currentTraceContext();
    if (ctx == nullptr)
        return;   // Nothing to link to.
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.flow = phase;
    e.start_ns = nowNs();
    e.has_context = true;
    e.session = ctx->session;
    e.frame = ctx->frame;
    e.flow_id = ctx->flowId();
    Shard &s = shard();
    e.tid = s.tid;
    s.events.push_back(e);
}

void
flightNote(const char *name, double delta)
{
    const TraceContext *ctx = currentTraceContext();
    if (ctx == nullptr || ctx->recorder == nullptr)
        return;
    ctx->recorder->record(FlightKind::Count, name, ctx->frame, delta);
}

void
setPostmortemDir(const std::string &dir)
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.postmortem_dir = dir;
}

std::string
postmortemDir()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    return r.postmortem_dir;
}

// --------------------------------------------------------------------
// Tracing
// --------------------------------------------------------------------

SpanGuard::SpanGuard(const char *category, const char *name)
    : category_(category), name_(name), start_ns_(0), active_(enabled())
{
    if (!active_)
        return;
    start_ns_ = nowNs();
    const TraceContext *ctx = currentTraceContext();
    if (ctx != nullptr && ctx->recorder != nullptr)
        ctx->recorder->record(FlightKind::SpanBegin, name_, ctx->frame);
}

SpanGuard::~SpanGuard()
{
    if (!active_)
        return;
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    e.start_ns = start_ns_;
    e.duration_ns = nowNs() - start_ns_;
    tagContext(e);
    // Mirror the close into the flight ring with no duration: flight
    // records carry no wall-clock values (bit-identity contract).
    const TraceContext *ctx = currentTraceContext();
    if (ctx != nullptr && ctx->recorder != nullptr)
        ctx->recorder->record(FlightKind::SpanEnd, name_, ctx->frame);
    Shard &s = shard();
    e.tid = s.tid;
    s.events.push_back(e);
}

void
instant(const char *category, const char *name,
        std::initializer_list<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.instant = true;
    e.start_ns = nowNs();
    for (const TraceArg &a : args) {
        if (e.arg_count >= kMaxTraceArgs)
            break;
        e.args[e.arg_count++] = a;
    }
    tagContext(e);
    const TraceContext *ctx = currentTraceContext();
    if (ctx != nullptr && ctx->recorder != nullptr) {
        ctx->recorder->record(FlightKind::Instant, name, ctx->frame,
                              e.arg_count > 0 ? e.args[0].value : 0.0);
    }
    Shard &s = shard();
    e.tid = s.tid;
    s.events.push_back(e);
}

std::vector<TraceEvent>
snapshotTrace()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::vector<TraceEvent> events = r.retired_events;
    for (const Shard *s : r.shards)
        events.insert(events.end(), s->events.begin(), s->events.end());
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.start_ns != b.start_ns)
                             return a.start_ns < b.start_ns;
                         return a.tid < b.tid;
                     });
    return events;
}

// --------------------------------------------------------------------
// Export / lifecycle
// --------------------------------------------------------------------

namespace {

/** Track id: context-tagged events render on a per-session track. */
int
eventPid(const TraceEvent &e)
{
    return e.has_context ? 100 + static_cast<int>(e.session) : 1;
}

void
writeEventJson(std::ofstream &out, const TraceEvent &e)
{
    const char *ph = "X";
    if (e.flow == FlowPhase::Start)
        ph = "s";
    else if (e.flow == FlowPhase::Step)
        ph = "t";
    else if (e.flow == FlowPhase::End)
        ph = "f";
    else if (e.instant)
        ph = "i";
    out << "    {\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
        << jsonEscape(e.category) << "\", \"ph\": \"" << ph
        << "\", \"ts\": "
        << jsonNumber(static_cast<double>(e.start_ns) / 1e3);
    if (e.flow != FlowPhase::None) {
        char idbuf[24];
        std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                      static_cast<unsigned long long>(e.flow_id));
        out << ", \"id\": \"" << idbuf << "\"";
        if (e.flow == FlowPhase::End)
            out << ", \"bp\": \"e\"";
    } else if (e.instant) {
        out << ", \"s\": \"t\"";
    } else {
        out << ", \"dur\": "
            << jsonNumber(static_cast<double>(e.duration_ns) / 1e3);
    }
    out << ", \"pid\": " << eventPid(e) << ", \"tid\": " << e.tid
        << ", \"args\": {";
    bool first = true;
    bool have_session = false;
    bool have_frame = false;
    for (std::uint32_t i = 0; i < e.arg_count; ++i) {
        const std::string_view name(e.args[i].name);
        have_session = have_session || name == "session";
        have_frame = have_frame || name == "frame";
        out << (first ? "" : ", ") << "\"" << jsonEscape(name)
            << "\": " << jsonNumber(e.args[i].value);
        first = false;
    }
    // Context tagging; explicit same-named args win (no duplicate keys).
    if (e.has_context && !have_session) {
        out << (first ? "" : ", ") << "\"session\": " << e.session;
        first = false;
    }
    if (e.has_context && !have_frame)
        out << (first ? "" : ", ") << "\"frame\": " << e.frame;
    out << "}}";
}

/** Names each per-session track (Chrome metadata, ph "M"). */
void
writeProcessNameJson(std::ofstream &out, int pid, const std::string &name)
{
    out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
        << pid << ", \"tid\": 0, \"args\": {\"name\": \""
        << jsonEscape(name) << "\"}}";
}

} // namespace

bool
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const auto events = snapshotTrace();
    std::set<std::uint32_t> sessions;
    for (const TraceEvent &e : events) {
        if (e.has_context)
            sessions.insert(e.session);
    }
    out << "{\n  \"displayTimeUnit\": \"ms\",\n"
        << "  \"otherData\": {\"schema\": \"archytas-trace-v1\"},\n"
        << "  \"traceEvents\": [\n";
    writeProcessNameJson(out, 1, "archytas");
    out << (events.empty() && sessions.empty() ? "\n" : ",\n");
    std::size_t meta_left = sessions.size();
    for (const std::uint32_t session : sessions) {
        writeProcessNameJson(out, 100 + static_cast<int>(session),
                             "session " + std::to_string(session));
        out << (--meta_left > 0 || !events.empty() ? ",\n" : "\n");
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
        writeEventJson(out, events[i]);
        out << (i + 1 < events.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return out.good();
}

bool
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const MetricsSnapshot snap = snapshotMetrics();
    out << "{\n  \"schema\": \"archytas-metrics-v1\",\n  \"counters\": [\n";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        const auto &c = snap.counters[i];
        out << "    {\"name\": \"" << jsonEscape(c.name)
            << "\", \"value\": " << c.value << "}"
            << (i + 1 < snap.counters.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"gauges\": [\n";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        const auto &g = snap.gauges[i];
        out << "    {\"name\": \"" << jsonEscape(g.name)
            << "\", \"value\": " << jsonNumber(g.value)
            << ", \"written\": " << (g.written ? "true" : "false") << "}"
            << (i + 1 < snap.gauges.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"histograms\": [\n";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto &h = snap.histograms[i];
        out << "    {\"name\": \"" << jsonEscape(h.name)
            << "\", \"count\": " << h.count << ", \"nan\": "
            << h.nan_count << ", \"sum\": " << jsonNumber(h.sum)
            << ", \"min\": " << jsonNumber(h.min) << ", \"max\": "
            << jsonNumber(h.max) << ", \"buckets\": [";
        bool first = true;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            if (h.buckets[b] == 0)
                continue;
            out << (first ? "" : ", ") << "{\"lo\": "
                << jsonNumber(Histogram::bucketLowerBound(b))
                << ", \"n\": " << h.buckets[b] << "}";
            first = false;
        }
        out << "]}" << (i + 1 < snap.histograms.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return out.good();
}

bool
writeMetricsCsv(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const MetricsSnapshot snap = snapshotMetrics();
    out << "kind,name,count,value,min,max,mean\n";
    for (const auto &c : snap.counters)
        out << "counter," << c.name << "," << c.value << "," << c.value
            << ",,,\n";
    for (const auto &g : snap.gauges) {
        if (!g.written)
            continue;
        out << "gauge," << g.name << ",1," << jsonNumber(g.value)
            << ",,,\n";
    }
    for (const auto &h : snap.histograms)
        out << "histogram," << h.name << "," << h.count << ","
            << jsonNumber(h.sum) << "," << jsonNumber(h.min) << ","
            << jsonNumber(h.max) << "," << jsonNumber(h.mean()) << "\n";
    return out.good();
}

bool
exportAll(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return false;
    const std::filesystem::path base(dir);
    return writeChromeTrace((base / "trace.json").string()) &&
           writeMetricsJson((base / "metrics.json").string()) &&
           writeMetricsCsv((base / "metrics.csv").string());
}

void
reset()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::fill(r.retired_counters.begin(), r.retired_counters.end(), 0);
    r.retired_hists.assign(r.retired_hists.size(), HistShard{});
    r.retired_events.clear();
    std::fill(r.gauge_values.begin(), r.gauge_values.end(), 0.0);
    std::fill(r.gauge_written.begin(), r.gauge_written.end(), 0);
    for (Shard *s : r.shards) {
        s->counters.clear();
        s->hists.clear();
        s->events.clear();
    }
}

ScopedExport::ScopedExport(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) != "--telemetry-out")
            continue;
        if (i + 1 >= argc)
            ARCHYTAS_FATAL("--telemetry-out requires a directory");
        dir_ = argv[i + 1];
        for (int j = i; j + 2 < argc; ++j)
            argv[j] = argv[j + 2];
        argc -= 2;
        break;
    }
    if (dir_.empty()) {
        const char *env = std::getenv("ARCHYTAS_TELEMETRY_OUT");
        if (env != nullptr && *env != '\0')
            dir_ = env;
    }
    if (!dir_.empty()) {
        setEnabled(true);
        if (postmortemDir().empty())
            setPostmortemDir(dir_);
    }
}

ScopedExport::~ScopedExport()
{
    if (dir_.empty())
        return;
    if (exportAll(dir_)) {
        ARCHYTAS_INFORM("telemetry: wrote ", dir_, "/trace.json, ",
                        "metrics.json, metrics.csv");
    } else {
        ARCHYTAS_WARN("telemetry: export to ", dir_, " failed");
    }
}

} // namespace archytas::telemetry
