#include "common/fault.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace archytas {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DmaTimeout:
        return "dma-timeout";
      case FaultKind::DmaStall:
        return "dma-stall";
      case FaultKind::BitFlip:
        return "bit-flip";
      case FaultKind::DroppedFrame:
        return "dropped-frame";
      case FaultKind::ImuGap:
        return "imu-gap";
      case FaultKind::ZeroFeatures:
        return "zero-features";
      case FaultKind::OutlierBurst:
        return "outlier-burst";
    }
    return "unknown";
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultEvent> events)
    : seed_(seed), events_(std::move(events))
{
    for (const FaultEvent &e : events_) {
        ARCHYTAS_ASSERT(e.count >= 1, "fault event needs count >= 1");
        ARCHYTAS_ASSERT(e.magnitude >= 0.0,
                        "fault event magnitude must be non-negative");
        if (e.kind == FaultKind::OutlierBurst)
            ARCHYTAS_ASSERT(e.magnitude <= 1.0,
                            "outlier fraction must be in [0, 1]");
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.window < b.window;
                     });
}

FaultPlan
FaultPlan::randomized(std::uint64_t seed, std::size_t windows,
                      const RandomRates &rates)
{
    Rng rng(seed);
    std::vector<FaultEvent> events;
    for (std::size_t w = 0; w < windows; ++w) {
        if (rng.bernoulli(rates.dma_timeout))
            events.push_back({w, FaultKind::DmaTimeout,
                              static_cast<std::size_t>(
                                  rng.uniformInt(1, 4)),
                              0.0});
        if (rng.bernoulli(rates.dma_stall))
            events.push_back(
                {w, FaultKind::DmaStall, 1, rates.stall_factor});
        if (rng.bernoulli(rates.bit_flip))
            events.push_back({w, FaultKind::BitFlip,
                              static_cast<std::size_t>(
                                  rng.uniformInt(1, 2)),
                              0.0});
        if (rng.bernoulli(rates.dropped_frame))
            events.push_back({w, FaultKind::DroppedFrame, 1, 0.0});
        if (rng.bernoulli(rates.imu_gap))
            events.push_back({w, FaultKind::ImuGap, 1, 0.0});
        if (rng.bernoulli(rates.zero_features))
            events.push_back({w, FaultKind::ZeroFeatures,
                              static_cast<std::size_t>(
                                  rng.uniformInt(1, 3)),
                              0.0});
        if (rng.bernoulli(rates.outlier_burst))
            events.push_back({w, FaultKind::OutlierBurst, 1,
                              rates.outlier_fraction});
    }
    return FaultPlan(seed, std::move(events));
}

const FaultEvent *
FaultPlan::find(std::size_t window, FaultKind kind) const
{
    // Only ZeroFeatures spans [window, window + count); for every other
    // kind, count parameterizes the event (attempts, flips) and the
    // event fires at exactly its window.
    const bool spans = kind == FaultKind::ZeroFeatures;
    for (const FaultEvent &e : events_) {
        if (e.kind != kind)
            continue;
        if (spans ? (window >= e.window && window < e.window + e.count)
                  : window == e.window)
            return &e;
    }
    return nullptr;
}

bool
FaultPlan::has(std::size_t window, FaultKind kind) const
{
    return find(window, kind) != nullptr;
}

std::vector<FaultEvent>
FaultPlan::at(std::size_t window) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events_)
        if (e.window == window)
            out.push_back(e);
    return out;
}

Rng
FaultPlan::rngFor(const FaultEvent &event) const
{
    // splitmix64-style mix of the plan seed and the event identity so
    // each event owns an independent, order-free stream.
    std::uint64_t z = seed_ ^ (event.window * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(event.kind) + 1) *
                          0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    for (const FaultEvent &e : events_)
        os << "window " << e.window << ": " << faultKindName(e.kind)
           << " (count " << e.count << ", magnitude " << e.magnitude
           << ")\n";
    return os.str();
}

} // namespace archytas
