/**
 * @file
 * Per-session flight recorder (docs/OBSERVABILITY.md): a fixed-size,
 * allocation-free ring buffer of the most recent observability events a
 * robot session produced -- span begin/end markers, counter deltas,
 * instant events (controller decisions), timeline placements, and fault
 * markers. When something goes wrong mid-flight (the divergence
 * watchdog trips, the hardware solver falls back, admission rejects a
 * session) the ring is dumped as a postmortem bundle
 * (`postmortem_<session>.json`), so the forensic record survives even
 * though the full trace buffer may hold millions of unrelated events
 * from thousands of healthy sessions.
 *
 * Determinism contract: records carry *no wall-clock values* -- only
 * names, frame indices, deltas, and simulated-timeline seconds -- so a
 * session's flight record is bit-identical at any ARCHYTAS_THREADS
 * (the PR-3 contract extended to postmortems; tested by
 * tests/service/test_service_determinism.cc).
 *
 * Storage discipline: the ring is carved once from an owned Arena block
 * on first use (lazily, so an idle recorder costs nothing under
 * ARCHYTAS_TELEMETRY=OFF) and never grows; older records are
 * overwritten and tallied in dropped(). record() on the steady state
 * touches no allocator.
 *
 * Threading: a recorder belongs to exactly one session, which is
 * stepped by one pool worker at a time and scheduled serially, so no
 * synchronization is needed (same ownership story as SolverScratch).
 */

#ifndef ARCHYTAS_COMMON_FLIGHT_RECORDER_HH
#define ARCHYTAS_COMMON_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/arena.hh"

namespace archytas::telemetry {

/** What a flight record describes. */
enum class FlightKind : std::uint8_t
{
    SpanBegin,   //!< A scoped span opened (value unused).
    SpanEnd,     //!< The matching span closed (value unused: spans
                 //!< carry no wall-clock duration here, by contract).
    Count,       //!< A counter was bumped; value = delta.
    Instant,     //!< An instant event fired; value = its first arg.
    Decision,    //!< A controller/scheduler decision; value = choice.
    Timeline,    //!< A simulated-timeline placement; value = seconds.
    Fault,       //!< A fault / recovery marker; value = detail code.
};

/** Human-readable kind name (stable; used in the postmortem bundle). */
const char *flightKindName(FlightKind kind);

/** One ring entry. POD: names must be string literals (no copy). */
struct FlightRecord
{
    std::uint64_t seq = 0;        //!< Monotonic per-recorder sequence.
    FlightKind kind = FlightKind::SpanBegin;
    std::uint32_t frame = 0;      //!< Session frame index when recorded.
    const char *name = nullptr;   //!< String literal.
    double value = 0.0;           //!< Kind-dependent payload.
};

/** Fixed-capacity ring of recent FlightRecords; see the file comment. */
class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 512;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Appends a record, overwriting the oldest when full. */
    void record(FlightKind kind, const char *name, std::uint32_t frame,
                double value = 0.0);

    /** Records retained (<= capacity()). */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    /** Records overwritten since construction / the last clear(). */
    std::uint64_t dropped() const { return dropped_; }
    /** Total records ever pushed (seq of the next record). */
    std::uint64_t sequence() const { return next_seq_; }

    /** The i-th retained record, oldest first (i < size()). */
    const FlightRecord &entry(std::size_t i) const;

    /** Empties the ring (capacity and storage are retained). */
    void clear();

    /**
     * Writes the ring as a postmortem bundle
     * (`archytas-postmortem-v1`): session identity, the trigger that
     * fired, and every retained record oldest-first. Returns false when
     * the file cannot be written. Also publishes `flight.dumps` /
     * `flight.postmortem` telemetry so dumps are visible in the metric
     * snapshot.
     */
    bool writePostmortem(const std::string &path, std::size_t session,
                         const std::string &label, const char *trigger,
                         std::uint32_t frame) const;

  private:
    void carve();

    common::Arena arena_;
    FlightRecord *ring_ = nullptr;   //!< Carved lazily on first record.
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;           //!< Next write slot.
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t next_seq_ = 0;
};

/**
 * Composes the conventional bundle path for a session:
 * `<dir>/postmortem_<label>.json`.
 */
std::string postmortemPath(const std::string &dir,
                           const std::string &label);

} // namespace archytas::telemetry

#endif // ARCHYTAS_COMMON_FLIGHT_RECORDER_HH
