#include "common/arena.hh"

#include <algorithm>
#include <cstdint>

namespace archytas::common {

namespace {

/** First block size when the caller gave no hint. */
constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

std::size_t
alignUp(std::size_t bytes)
{
    const std::size_t a = Arena::kAlignment;
    return (bytes + a - 1) / a * a;
}

} // namespace

Arena::Arena(std::size_t initial_bytes)
{
    if (initial_bytes > 0)
        grow(initial_bytes);
}

Arena::Block &
Arena::grow(std::size_t bytes)
{
    // Geometric growth keeps the block count logarithmic in the peak
    // footprint, so reset()+reuse converges after a handful of frames.
    std::size_t size = blocks_.empty() ? kDefaultBlockBytes
                                       : blocks_.back().size * 2;
    size = std::max(size, alignUp(bytes));
    Block block;
    // make_unique value-initializes, so first-use memory reads as zero;
    // reused memory keeps whatever the previous frame wrote.
    block.data = std::make_unique<std::byte[]>(size);
    block.size = size;
    ++block_allocations_;
    blocks_.push_back(std::move(block));
    return blocks_.back();
}

void *
Arena::allocate(std::size_t bytes)
{
    bytes = std::max(alignUp(bytes), kAlignment);
    for (;;) {
        while (active_ < blocks_.size()) {
            Block &b = blocks_[active_];
            // operator new[] only guarantees max_align_t alignment;
            // re-align the bump pointer to kAlignment by hand.
            std::byte *base = b.data.get();
            const auto addr =
                reinterpret_cast<std::uintptr_t>(base + b.used);
            const std::size_t pad =
                (kAlignment - addr % kAlignment) % kAlignment;
            if (b.used + pad + bytes <= b.size) {
                void *p = base + b.used + pad;
                b.used += pad + bytes;
                in_use_ += pad + bytes;
                high_water_ = std::max(high_water_, in_use_);
                return p;
            }
            ++active_;
        }
        grow(bytes + kAlignment);
        active_ = blocks_.size() - 1;
    }
}

void
Arena::reset()
{
    for (Block &b : blocks_)
        b.used = 0;
    active_ = 0;
    in_use_ = 0;
}

std::size_t
Arena::capacity() const
{
    std::size_t total = 0;
    for (const Block &b : blocks_)
        total += b.size;
    return total;
}

} // namespace archytas::common
