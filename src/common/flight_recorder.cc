#include "common/flight_recorder.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/contracts.hh"
#include "common/telemetry.hh"

namespace archytas::telemetry {

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
    case FlightKind::SpanBegin:
        return "span_begin";
    case FlightKind::SpanEnd:
        return "span_end";
    case FlightKind::Count:
        return "count";
    case FlightKind::Instant:
        return "instant";
    case FlightKind::Decision:
        return "decision";
    case FlightKind::Timeline:
        return "timeline";
    case FlightKind::Fault:
        return "fault";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    ARCHYTAS_ASSERT(capacity > 0, "flight recorder needs capacity");
}

void
FlightRecorder::carve()
{
    // One block, one carve: the Arena block discipline keeps the ring a
    // single aligned slab, and the lazy carve keeps an idle recorder
    // (telemetry disabled) free of heap traffic.
    ring_ = arena_.allocateArray<FlightRecord>(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
        ring_[i] = FlightRecord{};
}

void
FlightRecorder::record(FlightKind kind, const char *name,
                       std::uint32_t frame, double value)
{
    if (ring_ == nullptr)
        carve();
    FlightRecord &slot = ring_[head_];
    if (size_ == capacity_)
        ++dropped_;
    else
        ++size_;
    slot.seq = next_seq_++;
    slot.kind = kind;
    slot.frame = frame;
    slot.name = name;
    slot.value = value;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
}

const FlightRecord &
FlightRecorder::entry(std::size_t i) const
{
    ARCHYTAS_CHECK_BOUNDS("FlightRecorder::entry", i, size_);
    const std::size_t oldest =
        size_ == capacity_ ? head_ : head_ - size_;
    return ring_[(oldest + i) % capacity_];
}

void
FlightRecorder::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    next_seq_ = 0;
}

namespace {

std::string
jsonString(const char *s)
{
    std::string out = "\"";
    for (const char *p = s; p != nullptr && *p != '\0'; ++p) {
        if (*p == '"' || *p == '\\')
            out.push_back('\\');
        out.push_back(*p);
    }
    out.push_back('"');
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

bool
FlightRecorder::writePostmortem(const std::string &path,
                                std::size_t session,
                                const std::string &label,
                                const char *trigger,
                                std::uint32_t frame) const
{
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"schema\": \"archytas-postmortem-v1\",\n"
        << "  \"session\": " << session << ",\n"
        << "  \"label\": " << jsonString(label.c_str()) << ",\n"
        << "  \"trigger\": " << jsonString(trigger) << ",\n"
        << "  \"frame\": " << frame << ",\n"
        << "  \"dropped\": " << dropped_ << ",\n"
        << "  \"records\": [\n";
    for (std::size_t i = 0; i < size_; ++i) {
        const FlightRecord &r = entry(i);
        out << "    {\"seq\": " << r.seq << ", \"kind\": "
            << jsonString(flightKindName(r.kind)) << ", \"frame\": "
            << r.frame << ", \"name\": "
            << jsonString(r.name != nullptr ? r.name : "")
            << ", \"value\": " << jsonDouble(r.value) << "}"
            << (i + 1 < size_ ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    if (!out.good())
        return false;
    ARCHYTAS_COUNT_ADD("flight.dumps", 1);
    ARCHYTAS_INSTANT("flight", "flight.postmortem",
                     {"session", static_cast<double>(session)},
                     {"frame", static_cast<double>(frame)},
                     {"records", static_cast<double>(size_)});
    return true;
}

std::string
postmortemPath(const std::string &dir, const std::string &label)
{
    return dir + "/postmortem_" + label + ".json";
}

} // namespace archytas::telemetry
