#!/usr/bin/env python3
"""Summarize and gate Archytas SLO verdicts and postmortem bundles.

The in-process SLO engine (src/service/slo.hh) evaluates declarative
objectives -- frame-latency p99 bound, fallback/divergence/rejection
rates over sliding windows -- inside the service scheduling phase and
publishes the outcome as `slo.*` telemetry:

  gauges    slo.frame_p99_ms, slo.fallback_rate, slo.divergence_rate,
            slo.rejection_rate  (worst windowed value observed)
  counters  slo.evaluations, slo.violations
  instants  slo.verdict (in trace.json; args: pass, bound, observed,
            violations -- one per enabled objective)

This tool reads the metrics.json snapshot (and optionally the
trace.json next to it for per-objective bounds), prints a verdict
table, and validates flight-recorder postmortem bundles
(`postmortem_<session>.json`, schema archytas-postmortem-v1) named via
--postmortem.

Exit codes under --check:
  0  every objective passed (slo.violations == 0) and every named
     postmortem bundle is well formed
  1  an objective was violated, or a bundle / snapshot is malformed
  2  no SLO data at all (no slo.* metrics in the snapshot) -- distinct
     so callers can tell "failing" from "not evaluated"

Usage:
  archytas_slo_report.py <metrics.json> [--trace <trace.json>]
      [--postmortem <bundle.json> ...] [--check]
"""

import argparse
import glob
import json
import os
import sys

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_NO_DATA = 2

POSTMORTEM_SCHEMA = "archytas-postmortem-v1"
#: flight_recorder.hh FlightKind names.
RECORD_KINDS = ("span_begin", "span_end", "count", "instant", "decision",
                "timeline", "fault")


def as_number(value, default=0):
    return value if isinstance(value, (int, float)) else default


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), []
    except (OSError, json.JSONDecodeError) as err:
        return None, ["%s %s: %s" % (what, path, err)]


def slo_metrics(metrics):
    """Extracts (gauges, counters) restricted to the slo.* namespace."""
    gauges = {}
    for gauge in metrics.get("gauges", []):
        name = gauge.get("name", "")
        if name.startswith("slo.") and gauge.get("written"):
            gauges[name] = as_number(gauge.get("value"), 0.0)
    counters = {}
    for counter in metrics.get("counters", []):
        name = counter.get("name", "")
        if name.startswith("slo."):
            counters[name] = as_number(counter.get("value"), 0)
    return gauges, counters


def verdict_bounds(trace):
    """Per-objective (bound, pass, violations) from slo.verdict
    instants, in emission order (the engine emits one per objective)."""
    verdicts = []
    for event in trace.get("traceEvents", []):
        if not isinstance(event, dict):
            continue
        if event.get("ph") == "i" and event.get("name") == "slo.verdict":
            args = event.get("args")
            if isinstance(args, dict):
                verdicts.append(args)
    return verdicts


def validate_postmortem(path):
    """Schema checks on one postmortem bundle; returns error strings."""
    bundle, errors = load_json(path, "postmortem")
    if bundle is None:
        return errors
    where = os.path.basename(path)
    if bundle.get("schema") != POSTMORTEM_SCHEMA:
        errors.append("%s: unexpected schema %r"
                      % (where, bundle.get("schema")))
    for key in ("session", "label", "trigger", "frame", "dropped",
                "records"):
        if key not in bundle:
            errors.append("%s: missing key '%s'" % (where, key))
    records = bundle.get("records")
    if not isinstance(records, list):
        errors.append("%s: 'records' missing or not a list" % where)
        return errors
    prev_seq = -1
    for i, record in enumerate(records):
        tag = "%s record %d" % (where, i)
        if not isinstance(record, dict):
            errors.append("%s: not an object" % tag)
            continue
        for key in ("seq", "kind", "frame", "name", "value"):
            if key not in record:
                errors.append("%s: missing key '%s'" % (tag, key))
        if record.get("kind") not in RECORD_KINDS:
            errors.append("%s: unknown kind %r" % (tag, record.get("kind")))
        seq = as_number(record.get("seq"), -1)
        if seq <= prev_seq:
            errors.append("%s: sequence not strictly increasing "
                          "(%s after %s)" % (tag, seq, prev_seq))
        prev_seq = seq
    return errors


def postmortem_summary(path):
    bundle, errors = load_json(path, "postmortem")
    if bundle is None:
        return errors
    records = bundle.get("records", [])
    kinds = {}
    for record in records:
        if isinstance(record, dict):
            kind = record.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
    kind_list = ", ".join("%s=%d" % kv for kv in sorted(kinds.items()))
    return ["  %-28s session %-3s trigger %-16s %4d records "
            "(%s dropped) [%s]"
            % (os.path.basename(path), bundle.get("session", "?"),
               bundle.get("trigger", "?"), len(records),
               bundle.get("dropped", "?"), kind_list or "empty")]


def expand_postmortems(patterns):
    """Expands --postmortem arguments (files, dirs, globs) to paths."""
    paths = []
    for pattern in patterns:
        if os.path.isdir(pattern):
            paths += sorted(
                glob.glob(os.path.join(pattern, "postmortem_*.json")))
        else:
            matches = sorted(glob.glob(pattern))
            paths += matches if matches else [pattern]
    return paths


def main(argv):
    parser = argparse.ArgumentParser(
        description="Summarize / gate Archytas SLO verdicts")
    parser.add_argument("metrics", help="metrics.json from "
                        "--telemetry-out")
    parser.add_argument("--trace", help="trace.json from the same "
                        "export (adds per-objective bounds from the "
                        "slo.verdict instants)")
    parser.add_argument("--postmortem", action="append", default=[],
                        help="postmortem bundle, directory, or glob to "
                        "validate / summarize (repeatable)")
    parser.add_argument("--check", action="store_true",
                        help="gate: exit 1 on violations or malformed "
                        "input, 2 when no SLO data exists")
    args = parser.parse_args(argv)

    metrics, errors = load_json(args.metrics, "metrics")
    gauges, counters = ({}, {})
    if metrics is not None:
        gauges, counters = slo_metrics(metrics)

    verdicts = []
    if args.trace:
        trace, trace_errors = load_json(args.trace, "trace")
        errors += trace_errors
        if trace is not None:
            verdicts = verdict_bounds(trace)

    bundles = expand_postmortems(args.postmortem)
    bundle_errors = []
    for path in bundles:
        bundle_errors += validate_postmortem(path)

    violations = counters.get("slo.violations", 0)
    evaluations = counters.get("slo.evaluations", 0)
    have_data = bool(gauges) or bool(counters)

    # ---- report ----
    if have_data:
        print("SLO summary: %d window evaluations, %d violations -> %s"
              % (evaluations, violations,
                 "PASS" if violations == 0 else "FAIL"))
        for name in sorted(gauges):
            print("  %-24s worst %g" % (name, gauges[name]))
        if verdicts:
            print("verdicts (bound vs worst observed):")
            for verdict in verdicts:
                print("  bound %-12g observed %-12g violations %-6d %s"
                      % (as_number(verdict.get("bound"), 0.0),
                         as_number(verdict.get("observed"), 0.0),
                         int(as_number(verdict.get("violations"), 0)),
                         "PASS" if as_number(verdict.get("pass"), 0)
                         else "FAIL"))
    else:
        print("no slo.* metrics in %s (SLO engine not enabled?)"
              % args.metrics)

    if bundles:
        print("postmortem bundles (%d):" % len(bundles))
        for path in bundles:
            for line in postmortem_summary(path):
                print(line)

    for error in errors + bundle_errors:
        print("CHECK FAIL: %s" % error, file=sys.stderr)

    if not args.check:
        return EXIT_OK
    if errors or bundle_errors:
        return EXIT_FAIL
    if not have_data:
        return EXIT_NO_DATA
    return EXIT_OK if violations == 0 else EXIT_FAIL


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
