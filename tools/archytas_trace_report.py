#!/usr/bin/env python3
"""Summarize and validate an Archytas telemetry export.

Input is the Chrome trace-event JSON written by --telemetry-out (see
docs/OBSERVABILITY.md), plus optionally the metrics.json snapshot from
the same directory. The report shows where the time went (top spans by
total duration, per-phase p50/p95/p99), what the run-time controller
decided (decision table from the runtime.decide / runtime.hold instant
events), and how many causal flow arcs (`ph:"s"/"t"/"f"`) link frames
across the async boundary.

`--check` turns the tool into a validator for CI: it verifies the trace
schema event by event, that every category named via
--require-categories contributed at least one event, that every flow
arc is matched start-to-finish when --require-flows is given, and --
when --metrics is given -- that the metrics snapshot parses and carries
at least one counter, gauge, and histogram.

Exit codes under --check:
  0  valid export
  1  schema violation (malformed events, missing categories, ...)
  2  degenerate export: no events at all, or no complete span carries a
     positive duration (instant-only / zero-duration sets) -- reported
     distinctly so callers can tell "broken" from "empty"

Usage:
  archytas_trace_report.py <trace.json> [--metrics <metrics.json>]
      [--top N] [--check] [--require-categories cat1,cat2,...]
      [--require-flows]
"""

import argparse
import json
import sys
from collections import defaultdict

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_DEGENERATE = 2

#: Phases the exporter emits: complete spans, instants, flow
#: start/step/finish, and metadata (process names).
KNOWN_PHASES = ("X", "i", "s", "t", "f", "M")


def percentile(sorted_values, p):
    """Nearest-rank percentile of an ascending list (p in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(p / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def as_number(value, default=0):
    """Coerces a JSON value to a number; null / junk become default."""
    return value if isinstance(value, (int, float)) else default


def event_args(event):
    """The event's args dict; non-dict args degrade to empty."""
    args = event.get("args")
    return args if isinstance(args, dict) else {}


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), []
    except (OSError, json.JSONDecodeError) as err:
        return None, ["%s %s: %s" % (what, path, err)]


def validate_events(events, require_categories):
    """Schema checks on the traceEvents list; returns error strings."""
    errors = []
    seen_categories = set()
    for i, event in enumerate(events):
        where = "event %d" % i
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append("%s: unexpected phase %r" % (where, ph))
            continue
        if ph == "M":
            # Metadata (process_name etc.): no cat / ts by design.
            for key in ("name", "pid"):
                if key not in event:
                    errors.append("%s: metadata missing key '%s'"
                                  % (where, key))
            continue
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append("%s: missing key '%s'" % (where, key))
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)):
                errors.append("%s: complete event without numeric dur"
                              % where)
            elif event["dur"] < 0:
                errors.append("%s: negative duration" % where)
        if ph in ("s", "t", "f") and not event.get("id"):
            errors.append("%s: flow event without an id" % where)
        if not isinstance(event.get("ts"), (int, float)):
            errors.append("%s: non-numeric timestamp" % where)
        args = event.get("args", {})
        if not isinstance(args, dict):
            errors.append("%s: args is not an object" % where)
            args = {}
        for arg_name, arg_value in args.items():
            if not isinstance(arg_value, (int, float, type(None))):
                errors.append("%s: arg %r is not numeric"
                              % (where, arg_name))
        if "cat" in event:
            seen_categories.add(event["cat"])
    for category in require_categories:
        if category not in seen_categories:
            errors.append("required category '%s' contributed no events "
                          "(saw: %s)"
                          % (category,
                             ", ".join(sorted(seen_categories)) or "none"))
    return errors


def flow_arcs(events):
    """Maps flow id -> set of phases seen ('s'/'t'/'f')."""
    arcs = defaultdict(set)
    for event in events:
        if isinstance(event, dict) and event.get("ph") in ("s", "t", "f"):
            arcs[event.get("id")].add(event["ph"])
    return arcs


def validate_flows(events):
    """Every flow arc must have both its start and its finish."""
    arcs = flow_arcs(events)
    errors = []
    if not arcs:
        errors.append("--require-flows: no flow events recorded")
        return errors
    unstarted = sorted(i for i, phs in arcs.items() if "s" not in phs)
    unfinished = sorted(i for i, phs in arcs.items() if "f" not in phs)
    for flow_id in unstarted[:10]:
        errors.append("flow %s has no start event" % flow_id)
    for flow_id in unfinished[:10]:
        errors.append("flow %s has no finish event" % flow_id)
    if len(unstarted) > 10 or len(unfinished) > 10:
        errors.append("... %d unmatched flows in total"
                      % len(set(unstarted) | set(unfinished)))
    return errors


def degenerate_reason(events):
    """Why the export is empty-ish, or None when it has real spans."""
    if not events:
        return "no events recorded"
    spans = [e for e in events
             if isinstance(e, dict) and e.get("ph") == "X"]
    if not spans:
        return ("no complete spans recorded (%d events, all "
                "instant/flow/metadata)" % len(events))
    if all(as_number(e.get("dur"), 0) <= 0 for e in spans):
        return ("all %d complete spans have zero duration (clock "
                "resolution or a stubbed exporter?)" % len(spans))
    return None


def validate_metrics(metrics):
    errors = []
    if metrics.get("schema") != "archytas-metrics-v1":
        errors.append("metrics: unexpected schema %r"
                      % metrics.get("schema"))
    for kind in ("counters", "gauges", "histograms"):
        entries = metrics.get(kind)
        if not isinstance(entries, list):
            errors.append("metrics: '%s' missing or not a list" % kind)
            continue
        if not entries:
            errors.append("metrics: no %s recorded" % kind)
        for entry in entries:
            if "name" not in entry:
                errors.append("metrics: unnamed entry in %s" % kind)
    return errors


def span_table(events, top):
    """Aggregates complete events by name; returns report lines."""
    durations = defaultdict(list)
    for event in events:
        if event.get("ph") == "X":
            durations[event["name"]].append(
                as_number(event.get("dur"), 0) / 1000.0)
    if not durations:
        return ["top spans by total time: none recorded "
                "(instant-only or empty trace)"]
    rows = []
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        rows.append((total, name, len(values), values))
    rows.sort(reverse=True)

    lines = ["top spans by total time:",
             "  %-28s %8s %10s %10s %10s %10s"
             % ("span", "count", "total ms", "p50 ms", "p95 ms",
                "p99 ms")]
    for total, name, count, values in rows[:top]:
        lines.append("  %-28s %8d %10.3f %10.4f %10.4f %10.4f"
                     % (name, count, total, percentile(values, 50),
                        percentile(values, 95), percentile(values, 99)))
    return lines


def flow_table(events):
    """One-line flow-arc summary (matched/unmatched counts)."""
    arcs = flow_arcs(events)
    if not arcs:
        return ["flow arcs: none recorded"]
    matched = sum(1 for phs in arcs.values()
                  if "s" in phs and "f" in phs)
    return ["flow arcs: %d total, %d matched start-to-finish, "
            "%d unmatched" % (len(arcs), matched, len(arcs) - matched)]


def decision_table(events, top):
    """Controller decisions from runtime.decide/runtime.hold instants."""
    decisions = [e for e in events
                 if e.get("ph") == "i" and
                 e.get("name") in ("runtime.decide", "runtime.hold")]
    if not decisions:
        return ["controller decisions: none recorded"]
    reconfigs = [e for e in decisions
                 if e["name"] == "runtime.hold" or
                 event_args(e).get("reconfigured")]
    lines = ["controller decisions: %d windows, %d shown "
             "(reconfigurations and degraded holds):"
             % (len(decisions), min(len(reconfigs), top)),
             "  %-12s %10s %10s %6s  %s"
             % ("t (ms)", "features", "proposal", "Iter", "kind")]
    for event in reconfigs[:top]:
        args = event_args(event)
        if event["name"] == "runtime.hold":
            kind, features, proposal = "degraded hold", "-", "-"
        else:
            kind = "reconfigure"
            features = "%d" % as_number(args.get("features"), 0)
            proposal = "%d" % as_number(args.get("proposal"), 0)
        lines.append("  %-12.3f %10s %10s %6d  %s"
                     % (as_number(event.get("ts"), 0) / 1000.0, features,
                        proposal, int(as_number(args.get("iter"), 0)),
                        kind))
    return lines


def metrics_summary(metrics):
    lines = ["metrics snapshot: %d counters, %d gauges, %d histograms"
             % (len(metrics.get("counters", [])),
                len(metrics.get("gauges", [])),
                len(metrics.get("histograms", [])))]
    for counter in metrics.get("counters", []):
        lines.append("  counter   %-34s %d"
                     % (counter.get("name", "?"),
                        as_number(counter.get("value"), 0)))
    for gauge in metrics.get("gauges", []):
        if gauge.get("written"):
            lines.append("  gauge     %-34s %g"
                         % (gauge.get("name", "?"),
                            as_number(gauge.get("value"), 0.0)))
    for hist in metrics.get("histograms", []):
        count = as_number(hist.get("count"), 0)
        mean = as_number(hist.get("sum"), 0.0) / count if count else 0.0
        lines.append("  histogram %-34s n=%d mean=%g min=%g max=%g nan=%d"
                     % (hist.get("name", "?"), count, mean,
                        as_number(hist.get("min"), 0.0),
                        as_number(hist.get("max"), 0.0),
                        as_number(hist.get("nan"), 0)))
    return lines


def main(argv):
    parser = argparse.ArgumentParser(
        description="Summarize / validate an Archytas telemetry export")
    parser.add_argument("trace", help="Chrome trace-event JSON "
                        "(trace.json from --telemetry-out)")
    parser.add_argument("--metrics", help="metrics.json from the same "
                        "export directory")
    parser.add_argument("--top", type=int, default=15,
                        help="rows per table (default 15)")
    parser.add_argument("--check", action="store_true",
                        help="validate instead of merely reporting; "
                        "exit 1 on a schema violation, 2 on an "
                        "empty/degenerate export")
    parser.add_argument("--require-categories", default="",
                        help="comma-separated categories that must have "
                        "contributed events (with --check)")
    parser.add_argument("--require-flows", action="store_true",
                        help="with --check: fail unless at least one "
                        "flow arc exists and every arc is matched "
                        "start-to-finish")
    args = parser.parse_args(argv)

    trace, errors = load_json(args.trace, "trace")
    events = []
    if trace is not None:
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            errors.append("trace: 'traceEvents' missing or not a list")
            events = []

    required = [c for c in args.require_categories.split(",") if c]
    errors += validate_events(events, required)
    if args.require_flows:
        errors += validate_flows(events)

    metrics = None
    if args.metrics:
        metrics, metric_errors = load_json(args.metrics, "metrics")
        errors += metric_errors
        if metrics is not None:
            errors += validate_metrics(metrics)

    degenerate = degenerate_reason(events)

    if args.check:
        for error in errors:
            print("CHECK FAIL: %s" % error, file=sys.stderr)
        if errors:
            return EXIT_INVALID
        if degenerate is not None:
            # Distinct from a schema violation: the export is well
            # formed but carries nothing worth gating on.
            print("CHECK DEGENERATE: %s" % degenerate, file=sys.stderr)
            return EXIT_DEGENERATE
        print("telemetry export OK: %d events%s"
              % (len(events),
                 "" if metrics is None else
                 ", %d counters / %d gauges / %d histograms"
                 % (len(metrics.get("counters", [])),
                    len(metrics.get("gauges", [])),
                    len(metrics.get("histograms", [])))))
        return EXIT_OK

    if degenerate is not None:
        print("note: %s" % degenerate)
    for line in span_table(events, args.top):
        print(line)
    print()
    for line in flow_table(events):
        print(line)
    print()
    for line in decision_table(events, args.top):
        print(line)
    if metrics is not None:
        print()
        for line in metrics_summary(metrics):
            print(line)
    if errors:
        print()
        for error in errors:
            print("warning: %s" % error, file=sys.stderr)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
