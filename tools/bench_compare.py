#!/usr/bin/env python3
"""Compares an archytas-bench JSON export against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Both files are `archytas-bench-v1` documents (bench/bench_common.hh):
a `benchmarks` array (median_ms per benchmark) plus a `metrics` array
(named scalar metrics such as GFLOP/s, GB/s, latency percentiles).

For every benchmark and metric present in BOTH files, the delta is
reported and regressions beyond the threshold (default 5%) are flagged
with exit status 1 so CI can surface them. Keys present on only one
side -- a stale baseline missing the GFLOP/s and GB/s metrics newer
benches emit, or a bench retired by a PR -- are WARNINGS, never
failures: baselines are refreshed whenever kernels intentionally
change (`bench_kernels --json BENCH_kernels.json`).

Metric direction is inferred from the name: throughput-style markers
(`gflops`, `per_s`, `per_ms`, `per_sec`, `speedup`, `fraction`) mean
higher-is-better and a *drop* beyond the threshold regresses; wall-time
names (`_ms` / `_s` suffix, checked only after the throughput markers
so `gbytes_per_s` classifies correctly) mean lower-is-better; anything
else is report-only (e.g. `kernels.backend`, `frames_traced` -- value
identities, not performance).

CI boxes are noisy, so the CI step runs this with continue-on-error —
the check flags regressions in the job log and annotation rather than
hard-failing the pipeline. Locally it is a quick pre-push sanity check.

Exit status: 0 within threshold, 1 regressions found, 2 usage/format.
"""

import argparse
import json
import sys

#: Higher-is-better markers; checked BEFORE the _ms/_s suffixes so that
#: e.g. "gbytes_per_s" (ends in "_s") classifies as throughput.
HIGHER_BETTER_MARKERS = ("gflops", "gbytes", "per_s", "per_ms",
                         "per_sec", "speedup", "fraction")
#: Lower-is-better (wall time) suffixes.
LOWER_BETTER_SUFFIXES = ("_ms", "_s", "_ns", "_us")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "archytas-bench-v1":
        print(f"error: {path} is not an archytas-bench-v1 document",
              file=sys.stderr)
        sys.exit(2)
    benchmarks = {b["name"]: b for b in doc.get("benchmarks", [])}
    metrics = {m["name"]: m.get("value")
               for m in doc.get("metrics", [])
               if isinstance(m, dict) and "name" in m}
    return benchmarks, metrics


def metric_direction(name):
    """'higher', 'lower', or None (report-only) for a metric name."""
    lowered = name.lower()
    if any(marker in lowered for marker in HIGHER_BETTER_MARKERS):
        return "higher"
    if lowered.endswith(LOWER_BETTER_SUFFIXES):
        return "lower"
    return None


def compare_benchmarks(base, cur, threshold):
    """Median-ms comparison; returns (regressions, warnings)."""
    regressions = 0
    warnings = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            warnings += 1
            print(f"  warning   {name}: {cur[name]['median_ms']:.3f} ms "
                  "(no baseline entry; refresh the baseline)")
            continue
        if name not in cur:
            warnings += 1
            print(f"  warning   {name} missing from current run (was "
                  f"{base[name]['median_ms']:.3f} ms)")
            continue
        b = base[name]["median_ms"]
        c = cur[name]["median_ms"]
        delta = 0.0 if b == 0 else 100.0 * (c - b) / b
        if delta > threshold:
            regressions += 1
            tag = "REGRESSED"
        elif delta < -threshold:
            tag = "improved "
        else:
            tag = "ok       "
        print(f"  {tag} {name}: {b:.3f} -> {c:.3f} ms ({delta:+.1f}%)")
    return regressions, warnings


def compare_metrics(base, cur, threshold):
    """Named-metric comparison; returns (regressions, warnings)."""
    regressions = 0
    warnings = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            warnings += 1
            print(f"  warning   metric {name} has no baseline entry "
                  f"(current: {cur[name]:g}; stale baseline?)")
            continue
        if name not in cur:
            warnings += 1
            print(f"  warning   metric {name} missing from current run "
                  f"(baseline: {base[name]:g})")
            continue
        b, c = base[name], cur[name]
        if not isinstance(b, (int, float)) or \
                not isinstance(c, (int, float)):
            warnings += 1
            print(f"  warning   metric {name}: non-numeric value")
            continue
        direction = metric_direction(name)
        delta = 0.0 if b == 0 else 100.0 * (c - b) / b
        if direction == "higher":
            regressed = delta < -threshold
            improved = delta > threshold
        elif direction == "lower":
            regressed = delta > threshold
            improved = delta < -threshold
        else:
            regressed = improved = False
        if regressed:
            regressions += 1
            tag = "REGRESSED"
        elif improved:
            tag = "improved "
        elif direction is None:
            tag = "info     "
        else:
            tag = "ok       "
        print(f"  {tag} metric {name}: {b:g} -> {c:g} ({delta:+.1f}%)")
    return regressions, warnings


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    args = ap.parse_args()

    base_benchmarks, base_metrics = load(args.baseline)
    cur_benchmarks, cur_metrics = load(args.current)

    regressions, warnings = compare_benchmarks(
        base_benchmarks, cur_benchmarks, args.threshold)
    metric_regressions, metric_warnings = compare_metrics(
        base_metrics, cur_metrics, args.threshold)
    regressions += metric_regressions
    warnings += metric_warnings

    if warnings:
        print(f"bench_compare: {warnings} key(s) present on only one "
              "side (warned, not failed)")
    if regressions:
        print(f"bench_compare: {regressions} key(s) regressed more "
              f"than {args.threshold:.0f}%")
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
