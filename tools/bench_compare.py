#!/usr/bin/env python3
"""Compares a bench_kernels JSON export against the committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Both files are `archytas-bench-v1` documents (bench/bench_common.hh).
For every benchmark present in both, the median_ms delta is reported;
regressions beyond the threshold (default 5%) are flagged and the exit
status is 1 so CI can surface them. Benchmarks present on only one side
are reported but never fail the run (benches come and go with PRs; the
committed baseline is refreshed whenever kernels intentionally change:
`bench_kernels --json BENCH_kernels.json`).

CI boxes are noisy, so the CI step runs this with continue-on-error —
the check flags regressions in the job log and annotation rather than
hard-failing the pipeline. Locally it is a quick pre-push sanity check.

Exit status: 0 within threshold, 1 regressions found, 2 usage/format.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "archytas-bench-v1":
        print(f"error: {path} is not an archytas-bench-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"  new       {name}: {cur[name]['median_ms']:.3f} ms "
                  "(no baseline)")
            continue
        if name not in cur:
            print(f"  removed   {name} (was "
                  f"{base[name]['median_ms']:.3f} ms)")
            continue
        b = base[name]["median_ms"]
        c = cur[name]["median_ms"]
        delta = 0.0 if b == 0 else 100.0 * (c - b) / b
        if delta > args.threshold:
            regressions += 1
            tag = "REGRESSED"
        elif delta < -args.threshold:
            tag = "improved "
        else:
            tag = "ok       "
        print(f"  {tag} {name}: {b:.3f} -> {c:.3f} ms ({delta:+.1f}%)")

    if regressions:
        print(f"bench_compare: {regressions} benchmark(s) regressed more "
              f"than {args.threshold:.0f}% on median_ms")
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
