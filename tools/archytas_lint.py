#!/usr/bin/env python3
"""Repo-specific lint for Archytas, run as a CTest target (ctest -R lint).

Rules (each has a stable id used in waivers and the self-test fixtures):

  naked-new        No naked `new`/`delete` in C++ sources; use containers,
                   std::make_unique/std::make_shared, or value members.
  banned-random    No `std::rand`/`srand`/`random_shuffle` and no argless
                   wall-clock seeding (`time(NULL)`, `time(nullptr)`,
                   `time(0)`) outside src/common/rng.hh; every stochastic
                   component must draw from an explicitly seeded
                   archytas::Rng so runs are reproducible.
  float-loop-index No `double`/`float` induction variables in C-style for
                   loops; accumulate t = start + i * step from an integer
                   index instead (float accumulation drifts and the trip
                   count becomes platform-dependent).
  raw-thread       No `std::thread`/`std::jthread`/`std::async` outside
                   src/common/parallel.*; all parallelism goes through the
                   pool (archytas::parallel) whose fixed chunking and
                   ordered merges keep results bit-identical at any
                   thread count. Ad-hoc threads reintroduce scheduling-
                   dependent floating-point merge orders.
  include-guard    Headers under src/ use include guards named
                   ARCHYTAS_<PATH>_<FILE>_HH matching their path.
  hw-test-pairing  Every translation unit src/hw/<name>.cc has a matching
                   tests/hw/test_<name>.cc.
  direct-io        No direct `std::cout`/`std::cerr`/printf-family output
                   in library code under src/; route diagnostics through
                   ARCHYTAS_INFORM/WARN (common/logging.hh) and telemetry
                   through the metrics registry (common/telemetry.hh) so
                   output stays filterable and machine-parseable. The
                   logging and telemetry sinks themselves are exempt, as
                   are bench/, examples/, and tests/ (their stdout is the
                   product).
  nodiscard-status Functions declared in src/ headers that return a
                   status-carrying type by value (HostTransaction,
                   TransactionStatus, LmReport, SolveSummary,
                   ControllerDecision) must be marked [[nodiscard]]:
                   silently dropping one of these hides a failed DMA
                   transaction, a diverged solve, or a controller
                   decision. Reference-returning accessors are exempt.

A line may carry an explicit waiver comment `// lint:allow(<rule-id>)`
when a violation is intentional; waivers are counted and reported.

Exit status: 0 when clean, 1 when violations were found, 2 on usage error.

Self-test mode (--self-test) runs the linter over tests/lint/fixtures and
verifies that every fixture triggers exactly the rules named in its
`// lint-expect: rule-a rule-b` header line, proving the linter still
fails on known-bad input. Used by the `lint.fixtures` CTest target.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cc", ".hh"}
FIXTURE_DIR = Path("tests") / "lint" / "fixtures"

WAIVER_RE = re.compile(r"//\s*lint:allow\((?P<rule>[a-z-]+)\)")

NAKED_NEW_RE = re.compile(r"(?:^|[^\w.])new\s+[A-Za-z_(]")
NAKED_DELETE_RE = re.compile(r"(?:^|[^\w.])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]")
BANNED_RANDOM_RE = re.compile(
    r"std\s*::\s*rand\b|(?:^|[^\w:.])s?rand\s*\(|"
    r"std\s*::\s*random_shuffle\b|"
    r"(?:^|[^\w:.])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
FLOAT_LOOP_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?(?:double|float)\s+\w+\s*=")
RAW_THREAD_RE = re.compile(r"std\s*::\s*(?:thread|jthread|async)\b")
DIRECT_IO_RE = re.compile(
    r"std\s*::\s*c(?:out|err)\b|"
    r"(?:^|[^\w:.])(?:std\s*::\s*)?(?:f?printf|puts|fputs)\s*\(")
GUARD_IFNDEF_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.MULTILINE)

STATUS_TYPES = ("TransactionStatus", "HostTransaction", "LmReport",
                "SolveSummary", "ControllerDecision")
_STATUS = r"(?:\w+\s*::\s*)?(?:" + "|".join(STATUS_TYPES) + r")"
# `LmReport solveWindow(...)` on one line: a status type returned by
# value followed by the function name and its parameter list.
STATUS_DECL_RE = re.compile(
    r"(?:^|[(,;{]|\s)" + _STATUS + r"\s+(?!operator)\w+\s*\(")
# Repo style splits long declarations: the return type ends one line and
# the function name opens the next.
STATUS_TAIL_RE = re.compile(r"(?:^|\s)" + _STATUS + r"\s*$")
NEXT_NAME_RE = re.compile(r"^\s*\w+\s*\(")
NODISCARD_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i = 0
    n = len(text)
    state = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = None
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = None
            out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(relpath):
    """src/linalg/matrix.hh -> ARCHYTAS_LINALG_MATRIX_HH."""
    parts = relpath.with_suffix("").parts[1:]  # drop leading "src"
    return "ARCHYTAS_" + "_".join(p.upper().replace("-", "_")
                                  for p in parts) + "_HH"


def line_waivers(raw_lines):
    waived = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for m in WAIVER_RE.finditer(line):
            waived.setdefault(lineno, set()).add(m.group("rule"))
    return waived


def check_file(root, relpath, violations, waiver_count):
    raw = (root / relpath).read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    waived = line_waivers(raw_lines)
    clean = strip_comments_and_strings(raw)
    clean_lines = clean.splitlines()

    def report(rule, lineno, message):
        if rule in waived.get(lineno, ()):
            waiver_count[0] += 1
            return
        violations.append(Violation(rule, relpath, lineno, message))

    posix = relpath.as_posix()
    in_rng = posix.startswith("src/common/rng")
    in_pool = posix.startswith("src/common/parallel")
    in_fixture_dir = FIXTURE_DIR in relpath.parents
    # direct-io applies to library code only: bench/examples/tests print
    # their results on purpose, and the two sinks own the streams.
    io_checked = ((posix.startswith("src/") or in_fixture_dir)
                  and not posix.startswith("src/common/logging")
                  and not posix.startswith("src/common/telemetry"))
    for lineno, line in enumerate(clean_lines, start=1):
        if NAKED_NEW_RE.search(line):
            report("naked-new", lineno,
                   "naked `new`; use std::make_unique/containers")
        if NAKED_DELETE_RE.search(line):
            report("naked-new", lineno,
                   "naked `delete`; use RAII ownership")
        if not in_rng and BANNED_RANDOM_RE.search(line):
            report("banned-random", lineno,
                   "unseeded randomness/wall-clock seeding; draw from an "
                   "explicitly seeded archytas::Rng (common/rng.hh)")
        if FLOAT_LOOP_RE.search(line):
            report("float-loop-index", lineno,
                   "floating-point loop induction variable; iterate an "
                   "integer index and derive the value")
        if not in_pool and RAW_THREAD_RE.search(line):
            report("raw-thread", lineno,
                   "raw std::thread/std::async; route parallelism "
                   "through archytas::parallel (common/parallel.hh) so "
                   "results stay deterministic")
        if io_checked and DIRECT_IO_RE.search(line):
            report("direct-io", lineno,
                   "direct stream/printf output in library code; use "
                   "ARCHYTAS_INFORM/WARN (common/logging.hh) or the "
                   "telemetry registry (common/telemetry.hh)")

    in_fixtures = in_fixture_dir
    if relpath.suffix == ".hh" and (relpath.parts[0] == "src" or
                                    in_fixtures):
        def has_nodiscard(idx):
            """[[nodiscard]] on the declaration line or the one above."""
            if NODISCARD_RE.search(clean_lines[idx]):
                return True
            return idx > 0 and NODISCARD_RE.search(clean_lines[idx - 1])

        for idx, line in enumerate(clean_lines):
            if "using " in line or "typedef " in line:
                continue
            split_decl = (STATUS_TAIL_RE.search(line)
                          and idx + 1 < len(clean_lines)
                          and NEXT_NAME_RE.match(clean_lines[idx + 1]))
            if not split_decl and not STATUS_DECL_RE.search(line):
                continue
            if not has_nodiscard(idx):
                report("nodiscard-status", idx + 1,
                       "status-returning function lacks [[nodiscard]]; "
                       "discarding the result hides a failure")
        m = GUARD_IFNDEF_RE.search(clean)
        want = expected_guard(relpath)
        if not m:
            report("include-guard", 1, f"missing include guard {want}")
        elif m.group(1) != want:
            guard_line = clean[: m.start()].count("\n") + 1
            report("include-guard", guard_line,
                   f"include guard {m.group(1)} should be {want}")


def check_hw_test_pairing(root, violations):
    hw_dir = root / "src" / "hw"
    if not hw_dir.is_dir():
        return
    for cc in sorted(hw_dir.glob("*.cc")):
        expected = root / "tests" / "hw" / f"test_{cc.stem}.cc"
        if not expected.exists():
            violations.append(Violation(
                "hw-test-pairing", cc.relative_to(root), 0,
                f"no matching unit test tests/hw/test_{cc.stem}.cc"))


def iter_sources(root):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            rel = path.relative_to(root)
            if FIXTURE_DIR in (rel, *rel.parents):
                continue
            if path.suffix in CPP_SUFFIXES and path.is_file():
                yield rel


def lint_tree(root):
    violations = []
    waiver_count = [0]
    for rel in iter_sources(root):
        check_file(root, rel, violations, waiver_count)
    check_hw_test_pairing(root, violations)
    return violations, waiver_count[0]


def self_test(root):
    """Every fixture must trigger exactly its `// lint-expect:` rules."""
    fixtures = sorted((root / FIXTURE_DIR).glob("*"))
    fixtures = [f for f in fixtures if f.suffix in CPP_SUFFIXES]
    if not fixtures:
        print(f"self-test: no fixtures found under {FIXTURE_DIR}")
        return 1
    failures = 0
    for fixture in fixtures:
        rel = fixture.relative_to(root)
        head = fixture.read_text(encoding="utf-8").splitlines()[0]
        m = re.match(r"//\s*lint-expect:\s*(.*)$", head)
        if not m:
            print(f"self-test: {rel} lacks a // lint-expect: header")
            failures += 1
            continue
        expected = set(m.group(1).split())
        violations = []
        waivers = [0]
        check_file(root, rel, violations, waivers)
        got = {v.rule for v in violations}
        if got != expected:
            print(f"self-test: {rel}: expected rules {sorted(expected)}, "
                  f"linter reported {sorted(got)}")
            for v in violations:
                print(f"  {v}")
            failures += 1
    # The pairing rule has no per-file fixture: prove it fires by linting a
    # synthetic view where one hw unit has no test.
    pairing = []
    check_hw_test_pairing(root, pairing)
    if pairing:
        print("self-test: tree unexpectedly fails hw-test-pairing:")
        for v in pairing:
            print(f"  {v}")
        failures += 1
    if failures:
        print(f"self-test: FAILED ({failures} problem(s))")
        return 1
    print(f"self-test: ok ({len(fixtures)} fixtures)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against the violation "
                             "fixtures instead of linting the tree")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the Archytas root",
              file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    violations, waivers = lint_tree(root)
    for v in violations:
        print(v)
    suffix = f", {waivers} waiver(s)" if waivers else ""
    if violations:
        print(f"archytas_lint: {len(violations)} violation(s){suffix}")
        return 1
    print(f"archytas_lint: clean{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
