#!/usr/bin/env python3
"""Repo-specific lint for Archytas, run as a CTest target (ctest -R lint).

Ownership split with archytas-analyzer (tools/analyzer/, the C++
static-analysis engine; see docs/STATIC_ANALYSIS.md): the analyzer owns
every token/scope-sensitive rule — determinism (unordered containers,
randomness, wall-clock, atomic RMW), hot-path allocation, module
layering, contract coverage, telemetry names, naked-new, raw-thread,
nodiscard-status, and direct-io. This linter keeps only the file-level
conventions that need no token stream:

  float-loop-index No `double`/`float` induction variables in C-style for
                   loops; accumulate t = start + i * step from an integer
                   index instead (float accumulation drifts and the trip
                   count becomes platform-dependent).
  include-guard    Headers under src/ use include guards named
                   ARCHYTAS_<PATH>_<FILE>_HH matching their path.
  hw-test-pairing  Every translation unit src/hw/<name>.cc has a matching
                   tests/hw/test_<name>.cc.

A line may carry an explicit waiver comment `// lint:allow(<rule-id>)`
when a violation is intentional; waivers are counted and reported.
Analyzer rules use the analyzer's own waiver syntax
(`// archytas-analyzer: allow(<rule>) -- <justification>`), not this one.

Exit status: 0 when clean, 1 when violations were found, 2 on usage error.

Self-test mode (--self-test) runs the linter over tests/lint/fixtures and
verifies that every fixture triggers exactly the rules named in its
`// lint-expect: rule-a rule-b` header line, proving the linter still
fails on known-bad input. Used by the `lint.fixtures` CTest target.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cc", ".hh"}
FIXTURE_DIR = Path("tests") / "lint" / "fixtures"
# archytas-analyzer's golden fixtures are deliberately broken inputs.
ANALYZER_FIXTURE_DIR = Path("tests") / "analyzer" / "fixtures"

WAIVER_RE = re.compile(r"//\s*lint:allow\((?P<rule>[a-z-]+)\)")

FLOAT_LOOP_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?(?:double|float)\s+\w+\s*=")
GUARD_IFNDEF_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.MULTILINE)


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i = 0
    n = len(text)
    state = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = None
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = None
            out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(relpath):
    """src/linalg/matrix.hh -> ARCHYTAS_LINALG_MATRIX_HH."""
    parts = relpath.with_suffix("").parts[1:]  # drop leading "src"
    return "ARCHYTAS_" + "_".join(p.upper().replace("-", "_")
                                  for p in parts) + "_HH"


def line_waivers(raw_lines):
    waived = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for m in WAIVER_RE.finditer(line):
            waived.setdefault(lineno, set()).add(m.group("rule"))
    return waived


def check_file(root, relpath, violations, waiver_count):
    raw = (root / relpath).read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    waived = line_waivers(raw_lines)
    clean = strip_comments_and_strings(raw)
    clean_lines = clean.splitlines()

    def report(rule, lineno, message):
        if rule in waived.get(lineno, ()):
            waiver_count[0] += 1
            return
        violations.append(Violation(rule, relpath, lineno, message))

    in_fixture_dir = FIXTURE_DIR in relpath.parents
    for lineno, line in enumerate(clean_lines, start=1):
        if FLOAT_LOOP_RE.search(line):
            report("float-loop-index", lineno,
                   "floating-point loop induction variable; iterate an "
                   "integer index and derive the value")

    if relpath.suffix == ".hh" and (relpath.parts[0] == "src" or
                                    in_fixture_dir):
        m = GUARD_IFNDEF_RE.search(clean)
        want = expected_guard(relpath)
        if not m:
            report("include-guard", 1, f"missing include guard {want}")
        elif m.group(1) != want:
            guard_line = clean[: m.start()].count("\n") + 1
            report("include-guard", guard_line,
                   f"include guard {m.group(1)} should be {want}")


def check_hw_test_pairing(root, violations):
    hw_dir = root / "src" / "hw"
    if not hw_dir.is_dir():
        return
    for cc in sorted(hw_dir.glob("*.cc")):
        expected = root / "tests" / "hw" / f"test_{cc.stem}.cc"
        if not expected.exists():
            violations.append(Violation(
                "hw-test-pairing", cc.relative_to(root), 0,
                f"no matching unit test tests/hw/test_{cc.stem}.cc"))


def iter_sources(root):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            rel = path.relative_to(root)
            if FIXTURE_DIR in (rel, *rel.parents):
                continue
            if ANALYZER_FIXTURE_DIR in (rel, *rel.parents):
                continue
            if path.suffix in CPP_SUFFIXES and path.is_file():
                yield rel


def lint_tree(root):
    violations = []
    waiver_count = [0]
    for rel in iter_sources(root):
        check_file(root, rel, violations, waiver_count)
    check_hw_test_pairing(root, violations)
    return violations, waiver_count[0]


def self_test(root):
    """Every fixture must trigger exactly its `// lint-expect:` rules."""
    fixtures = sorted((root / FIXTURE_DIR).glob("*"))
    fixtures = [f for f in fixtures if f.suffix in CPP_SUFFIXES]
    if not fixtures:
        print(f"self-test: no fixtures found under {FIXTURE_DIR}")
        return 1
    failures = 0
    for fixture in fixtures:
        rel = fixture.relative_to(root)
        head = fixture.read_text(encoding="utf-8").splitlines()[0]
        m = re.match(r"//\s*lint-expect:\s*(.*)$", head)
        if not m:
            print(f"self-test: {rel} lacks a // lint-expect: header")
            failures += 1
            continue
        expected = set(m.group(1).split())
        violations = []
        waivers = [0]
        check_file(root, rel, violations, waivers)
        got = {v.rule for v in violations}
        if got != expected:
            print(f"self-test: {rel}: expected rules {sorted(expected)}, "
                  f"linter reported {sorted(got)}")
            for v in violations:
                print(f"  {v}")
            failures += 1
    # The pairing rule has no per-file fixture: prove it fires by linting a
    # synthetic view where one hw unit has no test.
    pairing = []
    check_hw_test_pairing(root, pairing)
    if pairing:
        print("self-test: tree unexpectedly fails hw-test-pairing:")
        for v in pairing:
            print(f"  {v}")
        failures += 1
    if failures:
        print(f"self-test: FAILED ({failures} problem(s))")
        return 1
    print(f"self-test: ok ({len(fixtures)} fixtures)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against the violation "
                             "fixtures instead of linting the tree")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the Archytas root",
              file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    violations, waivers = lint_tree(root)
    for v in violations:
        print(v)
    suffix = f", {waivers} waiver(s)" if waivers else ""
    if violations:
        print(f"archytas_lint: {len(violations)} violation(s){suffix}")
        return 1
    print(f"archytas_lint: clean{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
