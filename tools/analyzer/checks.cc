#include "checks.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace archytas::analyzer {

namespace {

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
inSrc(const SourceFile &f)
{
    return startsWith(f.path, "src/");
}

bool
isRngSink(const SourceFile &f)
{
    return startsWith(f.path, "src/common/rng");
}

bool
isTelemetrySink(const SourceFile &f)
{
    return startsWith(f.path, "src/common/telemetry");
}

bool
isPoolImpl(const SourceFile &f)
{
    return startsWith(f.path, "src/common/parallel");
}

bool
isLoggingSink(const SourceFile &f)
{
    return startsWith(f.path, "src/common/logging");
}

void
add(std::vector<Finding> &findings, const SourceFile &f,
    const std::string &rule, std::size_t line, std::size_t col,
    std::string message, Severity sev = Severity::Error,
    std::string key = "")
{
    Finding x;
    x.rule = rule;
    x.file = f.path;
    x.line = line;
    x.col = col;
    x.message = std::move(message);
    x.severity = sev;
    x.fingerprint = rule + "|" + f.path + "|" +
                    (key.empty() ? f.normalizedLine(line)
                                 : std::move(key));
    findings.push_back(std::move(x));
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    if (a.size() > 64 || b.size() > 64)
        return 64;
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

// ---------------------------------------------------------------------
// determinism-*: unordered containers, unseeded randomness, wall-clock
// reads, atomic read-modify-write inside pool lambdas.
// ---------------------------------------------------------------------

void
checkDeterminism(const AnalysisContext &ctx, const SourceFile &f,
                 std::vector<Finding> &findings)
{
    const std::vector<Token> &t = f.lex.tokens;

    if (inSrc(f)) {
        for (const VarDecl &d : f.scopes.unordered_decls)
            add(findings, f, "determinism-unordered", d.line, 1,
                "std::" + d.type +
                    (d.name.empty() ? "" : " `" + d.name + "`") +
                    " is hash-ordered: iteration and export order can "
                    "differ across platforms and runs; use "
                    "std::map/std::set or a sorted snapshot, or waive "
                    "with proof that order cannot reach results");
        for (const RangeFor &rf : f.scopes.range_fors)
            if (!rf.base_ident.empty() &&
                ctx.unordered_names.count(rf.base_ident))
                add(findings, f, "determinism-unordered", rf.line, 1,
                    "iteration over hash-ordered container `" +
                        rf.base_ident +
                        "`: visit order is bucket order and can reach "
                        "results or exports",
                    Severity::Error, "iter:" + rf.base_ident);
    }

    if (!isRngSink(f)) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokenKind::Identifier)
                continue;
            const std::string &x = t[i].text;
            if (x == "rand" || x == "srand" || x == "random_shuffle" ||
                x == "random_device") {
                // Require a call or std:: qualification so identifiers
                // merely containing these names don't trip the rule.
                const bool qualified = i >= 1 && t[i - 1].is("::");
                const bool member_access =
                    i >= 1 && (t[i - 1].is(".") || t[i - 1].is("->"));
                const bool called =
                    i + 1 < t.size() &&
                    (t[i + 1].is("(") || t[i + 1].is("{"));
                if (!member_access && (qualified || called))
                    add(findings, f, "determinism-random", t[i].line,
                        t[i].col,
                        "`" + x +
                            "` is unseeded/global randomness; draw "
                            "from an explicitly seeded archytas::Rng "
                            "(common/rng.hh) so runs are reproducible");
            }
        }
    }

    if (!isTelemetrySink(f)) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokenKind::Identifier)
                continue;
            const std::string &x = t[i].text;
            const bool member_access =
                i >= 1 && (t[i - 1].is(".") || t[i - 1].is("->"));
            if (member_access)
                continue;
            if (x == "system_clock" || x == "gettimeofday" ||
                x == "localtime" || x == "gmtime") {
                add(findings, f, "determinism-wall-clock", t[i].line,
                    t[i].col,
                    "`" + x +
                        "` reads the wall clock; results and exports "
                        "must not depend on when a run happens (use "
                        "explicit timestamps from the dataset, or "
                        "steady_clock strictly for telemetry timing)");
            } else if (x == "time" && i + 1 < t.size() &&
                       t[i + 1].is("(")) {
                const Token &arg = t[i + 2 < t.size() ? i + 2 : i + 1];
                if (arg.is(")") || arg.ident("NULL") ||
                    arg.ident("nullptr") || arg.is("0"))
                    add(findings, f, "determinism-wall-clock",
                        t[i].line, t[i].col,
                        "`time(...)` wall-clock read/seed; use an "
                        "explicitly seeded archytas::Rng or dataset "
                        "timestamps");
            }
        }
    }

    if (!isPoolImpl(f) && !isTelemetrySink(f)) {
        static const char *const kRmw[] = {
            "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
            "fetch_xor", "exchange", "compare_exchange_weak",
            "compare_exchange_strong", nullptr};
        for (const LambdaInfo &lam : f.scopes.lambdas) {
            if (!lam.hot)
                continue;
            for (std::size_t i = lam.body.begin; i < lam.body.end;
                 ++i) {
                if (t[i].kind != TokenKind::Identifier)
                    continue;
                const bool member =
                    i >= 1 && (t[i - 1].is(".") || t[i - 1].is("->"));
                bool rmw_name = false;
                for (const char *const *q = kRmw; *q; ++q)
                    if (t[i].is(*q))
                        rmw_name = true;
                if (member && rmw_name) {
                    add(findings, f, "determinism-atomic-rmw",
                        t[i].line, t[i].col,
                        "atomic read-modify-write (`" + t[i].text +
                            "`) inside a lambda handed to the "
                            "deterministic pool: cross-task "
                            "accumulation order would depend on the "
                            "schedule; accumulate per-task and merge "
                            "in fixed order instead");
                    continue;
                }
                if (ctx.atomic_names.count(t[i].text) && !member &&
                    i + 1 < t.size()) {
                    static const char *const kOps[] = {
                        "++", "--", "+=", "-=", "|=", "&=", "^=",
                        nullptr};
                    for (const char *const *q = kOps; *q; ++q)
                        if (t[i + 1].is(*q))
                            add(findings, f, "determinism-atomic-rmw",
                                t[i].line, t[i].col,
                                "read-modify-write of atomic `" +
                                    t[i].text +
                                    "` inside a pool lambda: the "
                                    "merge order depends on the "
                                    "schedule; accumulate per-task "
                                    "and merge in fixed order");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// hot-path-alloc: heap allocation in solver kernels and pool lambdas.
// ---------------------------------------------------------------------

void
checkHotPathAlloc(const SourceFile &f, std::vector<Finding> &findings)
{
    // The pool implementation itself owns task bookkeeping allocations.
    if (!inSrc(f) || isPoolImpl(f))
        return;
    const std::vector<Token> &t = f.lex.tokens;

    std::vector<TokenRange> hot;
    // The kernel TUs are hot in their entirety: the portable kernels,
    // the AVX2 backend, and the backend-selection TU they dispatch
    // through.
    if (f.path == "src/linalg/kernels.cc" ||
        f.path == "src/linalg/kernels_avx2.cc" ||
        f.path == "src/linalg/simd.cc")
        hot.push_back({0, t.size()});
    for (const LambdaInfo &lam : f.scopes.lambdas)
        if (lam.hot)
            hot.push_back(lam.body);
    // Functions taking a common::Arena by reference are per-frame
    // scratch consumers: the arena exists precisely so they do not
    // touch the heap, so their bodies are hot. Arena::allocate /
    // allocateArray are bump-pointer carves, not heap calls, and are
    // deliberately absent from the flagged-name lists below.
    for (const FunctionDef &fn : f.scopes.functions) {
        if (fn.is_declaration || fn.body.end == fn.body.begin)
            continue;
        for (std::size_t i = fn.params.begin; i < fn.params.end; ++i)
            if (t[i].ident("Arena") && i + 1 < fn.params.end &&
                t[i + 1].is("&")) {
                hot.push_back(fn.body);
                break;
            }
    }
    if (hot.empty())
        return;
    const auto inHot = [&](std::size_t idx) {
        for (const TokenRange &r : hot)
            if (r.contains(idx))
                return true;
        return false;
    };

    static const char *const kGrowth[] = {
        "push_back", "emplace_back", "resize",  "reserve",
        "insert",    "emplace",      "assign",  "append", nullptr};
    static const char *const kCAlloc[] = {
        "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
        nullptr};

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!inHot(i) || t[i].kind != TokenKind::Identifier)
            continue;
        const std::string &x = t[i].text;
        const bool member =
            i >= 1 && (t[i - 1].is(".") || t[i - 1].is("->"));
        const bool called = i + 1 < t.size() && t[i + 1].is("(");

        if (x == "new" && (i == 0 || !t[i - 1].is("operator"))) {
            add(findings, f, "hot-path-alloc", t[i].line, t[i].col,
                "heap allocation (`new`) on a hot path; preallocate "
                "outside the kernel/lambda and reuse storage");
            continue;
        }
        if (called && !member)
            for (const char *const *q = kCAlloc; *q; ++q)
                if (x == *q)
                    add(findings, f, "hot-path-alloc", t[i].line,
                        t[i].col,
                        "C allocation (`" + x +
                            "`) on a hot path; preallocate outside "
                            "the kernel/lambda");
        if (member && called)
            for (const char *const *q = kGrowth; *q; ++q)
                if (x == *q)
                    add(findings, f, "hot-path-alloc", t[i].line,
                        t[i].col,
                        "container growth (`." + x +
                            "()`) on a hot path can reallocate; "
                            "size the container before entering the "
                            "kernel/lambda");
        if ((x == "Matrix" || x == "Vector") && called && !member &&
            (i == 0 || !t[i - 1].is("new"))) {
            add(findings, f, "hot-path-alloc", t[i].line, t[i].col,
                "constructs a " + x +
                    " temporary (heap-backed) on a hot path; use the "
                    "destination-passing kernels "
                    "(linalg/kernels.hh) and reuse storage");
        }
        if (x == "vector" && i >= 2 && t[i - 1].is("::") &&
            t[i - 2].ident("std") && i + 1 < t.size() &&
            t[i + 1].is("<")) {
            add(findings, f, "hot-path-alloc", t[i].line, t[i].col,
                "local std::vector on a hot path allocates; hoist the "
                "buffer out of the kernel/lambda");
        }
    }
}

// ---------------------------------------------------------------------
// layering: the module include DAG.
// ---------------------------------------------------------------------

void
checkLayering(const SourceFile &f, std::vector<Finding> &findings)
{
    if (!inSrc(f) || f.module.empty())
        return;
    const int own = moduleRank(f.module);
    if (own < 0)
        return;
    for (const IncludeDirective &inc : f.lex.includes) {
        if (inc.angled)
            continue;
        const std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos)
            continue;
        const std::string target = inc.path.substr(0, slash);
        const int rank = moduleRank(target);
        if (rank < 0 || target == f.module || rank < own)
            continue;
        const char *kind = rank == own ? "a lateral" : "an upward";
        add(findings, f, "layering", inc.line, 1,
            std::string("include of \"") + inc.path + "\" is " +
                kind + " dependency from module '" + f.module +
                "' (rank " + std::to_string(own) + ") on '" + target +
                "' (rank " + std::to_string(rank) +
                "); the module DAG is common <- linalg <- "
                "{hw, mdfg, dataset} <- {slam, baseline} <- "
                "{synth, runtime} <- service",
            Severity::Error, "include:" + inc.path);
    }
}

// ---------------------------------------------------------------------
// global-state: mutable static/thread_local variables in src/. Every
// estimator, solver, and session must be self-contained so concurrent
// robot sessions (src/service/) stay bit-identical to serial runs; the
// few intentional process-wide singletons carry inline waivers.
// ---------------------------------------------------------------------

void
checkGlobalState(const SourceFile &f, std::vector<Finding> &findings)
{
    if (!inSrc(f))
        return;
    const std::vector<Token> &t = f.lex.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const bool is_static = t[i].ident("static");
        if (!is_static && !t[i].ident("thread_local"))
            continue;
        // `static thread_local` reports once, at the first keyword.
        if (i > 0 && (t[i - 1].ident("static") ||
                      t[i - 1].ident("thread_local")))
            continue;
        // Scan the declaration head: reaching `(` first means a
        // function (member declarations included), not a variable;
        // a const/constexpr/constinit qualifier means immutable.
        bool is_variable = false;
        bool is_const = false;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].ident("const") || t[j].ident("constexpr") ||
                t[j].ident("constinit")) {
                is_const = true;
            } else if (t[j].is("(")) {
                break;
            } else if (t[j].is(";") || t[j].is("=") || t[j].is("{")) {
                is_variable = true;
                break;
            }
        }
        if (!is_variable || is_const)
            continue;
        add(findings, f, "global-state", t[i].line, t[i].col,
            std::string("mutable `") + t[i].text +
                "` variable: process-global state couples concurrent "
                "sessions and breaks the reentrancy contract "
                "(docs/SERVICE.md); move it into the owning object or "
                "session context, or waive the intentional "
                "process-wide singleton with a justification");
    }
}

// ---------------------------------------------------------------------
// Ported scope-sensitive lint rules: naked-new, raw-thread, direct-io,
// nodiscard-status.
// ---------------------------------------------------------------------

void
checkStyle(const SourceFile &f, std::vector<Finding> &findings)
{
    const std::vector<Token> &t = f.lex.tokens;
    const bool io_checked =
        inSrc(f) && !isLoggingSink(f) && !isTelemetrySink(f);

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier)
            continue;
        const std::string &x = t[i].text;
        const Token *prev = i > 0 ? &t[i - 1] : nullptr;
        const Token *next = i + 1 < t.size() ? &t[i + 1] : nullptr;

        if (x == "new" && (!prev || !prev->is("operator")) && next &&
            (next->kind == TokenKind::Identifier || next->is("("))) {
            add(findings, f, "naked-new", t[i].line, t[i].col,
                "naked `new`; use std::make_unique, containers, or "
                "value members");
        }
        if (x == "delete" && prev && !prev->is("=") &&
            !prev->is("operator") && next &&
            (next->kind == TokenKind::Identifier || next->is("(") ||
             next->is("[") || next->is("*"))) {
            add(findings, f, "naked-new", t[i].line, t[i].col,
                "naked `delete`; use RAII ownership");
        }
        if ((x == "thread" || x == "jthread" || x == "async") &&
            prev && prev->is("::") && i >= 2 &&
            t[i - 2].ident("std") && !isPoolImpl(f)) {
            add(findings, f, "raw-thread", t[i].line, t[i].col,
                "raw std::" + x +
                    "; route parallelism through archytas::parallel "
                    "(common/parallel.hh) so fixed chunking and "
                    "ordered merges keep results bit-identical at "
                    "any thread count");
        }
        if (io_checked) {
            if ((x == "cout" || x == "cerr") && prev &&
                prev->is("::") && i >= 2 && t[i - 2].ident("std")) {
                add(findings, f, "direct-io", t[i].line, t[i].col,
                    "direct std::" + x +
                        " output in library code; use "
                        "ARCHYTAS_INFORM/WARN (common/logging.hh) or "
                        "the telemetry registry");
            }
            if ((x == "printf" || x == "fprintf" || x == "puts" ||
                 x == "fputs") &&
                next && next->is("(") &&
                (!prev || (!prev->is(".") && !prev->is("->")))) {
                add(findings, f, "direct-io", t[i].line, t[i].col,
                    "direct `" + x +
                        "` output in library code; use "
                        "ARCHYTAS_INFORM/WARN (common/logging.hh) or "
                        "the telemetry registry");
            }
        }
    }
}

void
checkNodiscard(const SourceFile &f, std::vector<Finding> &findings)
{
    if (!inSrc(f) || !f.is_header)
        return;
    static const char *const kStatusTypes[] = {
        "TransactionStatus", "HostTransaction", "LmReport",
        "SolveSummary", "ControllerDecision", nullptr};
    const std::vector<Token> &t = f.lex.tokens;
    for (const FunctionDef &fn : f.scopes.functions) {
        bool has_nodiscard = false;
        bool returns_status_by_value = false;
        bool type_alias = false;
        for (std::size_t i = fn.prefix.begin; i < fn.prefix.end; ++i) {
            if (t[i].ident("nodiscard"))
                has_nodiscard = true;
            if (t[i].ident("using") || t[i].ident("typedef") ||
                t[i].ident("friend"))
                type_alias = true;
            for (const char *const *q = kStatusTypes; *q; ++q)
                if (t[i].is(*q)) {
                    const bool by_ref =
                        i + 1 < fn.prefix.end &&
                        (t[i + 1].is("&") || t[i + 1].is("*"));
                    if (!by_ref)
                        returns_status_by_value = true;
                }
        }
        if (returns_status_by_value && !has_nodiscard && !type_alias)
            add(findings, f, "nodiscard-status", fn.line, 1,
                "`" + fn.name +
                    "` returns a status-carrying type by value "
                    "without [[nodiscard]]; silently dropping it "
                    "hides a failed transaction or a diverged solve",
                Severity::Error, "fn:" + fn.name);
    }
}

// ---------------------------------------------------------------------
// contract-coverage: dimension contracts on linalg/hw functions that
// take Matrix/Vector parameters, gated per module.
// ---------------------------------------------------------------------

bool
isContractMacro(const std::string &x)
{
    // ARCHYTAS_FATAL counts too: a guarded fatal (user-error) precondition
    // still validates the function's Matrix/Vector inputs.
    return x == "ARCHYTAS_DCHECK" || x == "ARCHYTAS_CHECK_DIM" ||
           x == "ARCHYTAS_CHECK_BOUNDS" || x == "ARCHYTAS_ASSERT" ||
           x == "ARCHYTAS_FATAL";
}

bool
isDimensionedType(const std::string &x)
{
    return x == "Matrix" || x == "Vector" || x == "CompactSMatrix" ||
           x == "CsrMatrix";
}

void
checkContractCoverage(const AnalysisContext &ctx,
                      std::vector<Finding> &findings,
                      std::vector<CoverageRow> &coverage)
{
    std::map<std::string, CoverageRow> rows;
    std::map<std::string, std::vector<std::string>> uncovered;
    for (const SourceFile &f : ctx.files) {
        if (!inSrc(f) || (f.module != "linalg" && f.module != "hw"))
            continue;
        const std::vector<Token> &t = f.lex.tokens;
        for (const FunctionDef &fn : f.scopes.functions) {
            if (fn.is_declaration || fn.in_anon_namespace)
                continue;
            bool dimensioned = false;
            for (std::size_t i = fn.params.begin; i < fn.params.end;
                 ++i)
                if (t[i].kind == TokenKind::Identifier &&
                    isDimensionedType(t[i].text))
                    dimensioned = true;
            if (!dimensioned)
                continue;
            bool covered = false;
            for (std::size_t i = fn.body.begin; i < fn.body.end; ++i)
                if (t[i].kind == TokenKind::Identifier &&
                    isContractMacro(t[i].text))
                    covered = true;
            CoverageRow &row = rows[f.module];
            row.module = f.module;
            ++row.total;
            if (covered) {
                ++row.covered;
            } else {
                uncovered[f.module].push_back(f.path + ":" +
                                              std::to_string(fn.line) +
                                              " " + fn.name);
                Finding note;
                note.rule = "contract-coverage";
                note.file = f.path;
                note.line = fn.line;
                note.col = 1;
                note.severity = Severity::Note;
                note.message =
                    "`" + fn.name +
                    "` takes Matrix/Vector parameters but asserts no "
                    "dimension contract (ARCHYTAS_CHECK_DIM / "
                    "ARCHYTAS_DCHECK)";
                note.fingerprint = "contract-coverage|" + f.path +
                                   "|fn:" + fn.name;
                findings.push_back(std::move(note));
            }
        }
    }
    for (auto &[module, row] : rows) {
        coverage.push_back(row);
        if (row.percent() + 1e-9 < ctx.config.contract_threshold) {
            std::ostringstream msg;
            msg << "module '" << module << "' contract coverage "
                << row.covered << "/" << row.total << " ("
                << static_cast<int>(row.percent())
                << "%) is below the gating threshold ("
                << static_cast<int>(ctx.config.contract_threshold)
                << "%); uncovered:";
            const auto &list = uncovered[module];
            for (std::size_t i = 0; i < list.size() && i < 8; ++i)
                msg << " " << list[i] << ";";
            if (list.size() > 8)
                msg << " ... +" << list.size() - 8 << " more";
            Finding f;
            f.rule = "contract-coverage";
            f.file = "src/" + module;
            f.line = 0;
            f.message = msg.str();
            f.fingerprint =
                "contract-coverage|src/" + module + "|threshold";
            findings.push_back(std::move(f));
        }
    }
}

// ---------------------------------------------------------------------
// telemetry-names: every telemetry string literal matches the schema.
// ---------------------------------------------------------------------

struct SchemaEntry {
    std::string kind;
    std::string name;
    std::string category; // span/instant only
    std::size_t line = 0;
    bool used = false;
};

void
checkTelemetryNames(const AnalysisContext &ctx,
                    std::vector<Finding> &findings)
{
    static const std::map<std::string, std::string> kMacroKind = {
        {"ARCHYTAS_COUNT_ADD", "counter"},
        {"ARCHYTAS_GAUGE_SET", "gauge"},
        {"ARCHYTAS_HIST_RECORD", "hist"},
        {"ARCHYTAS_SPAN", "span"},
        {"ARCHYTAS_INSTANT", "instant"},
    };

    const std::string schema_rel = ctx.config.schema_path;
    const std::string schema_abs = ctx.config.root + "/" + schema_rel;

    std::map<std::pair<std::string, std::string>, SchemaEntry> schema;
    bool schema_present = false;
    {
        std::ifstream in(schema_abs);
        if (in) {
            schema_present = true;
            std::string line;
            std::size_t lineno = 0;
            while (std::getline(in, line)) {
                ++lineno;
                const std::size_t hash = line.find('#');
                if (hash != std::string::npos)
                    line = line.substr(0, hash);
                std::istringstream ls(line);
                std::string kind, a, b;
                if (!(ls >> kind))
                    continue;
                SchemaEntry e;
                e.kind = kind;
                e.line = lineno;
                const auto schema_finding =
                    [&](const std::string &message) {
                        Finding f;
                        f.rule = "telemetry-names";
                        f.file = schema_rel;
                        f.line = lineno;
                        f.message = message;
                        f.fingerprint = "telemetry-names|" +
                                        schema_rel + "|" + message;
                        findings.push_back(std::move(f));
                    };
                if (kind == "span" || kind == "instant") {
                    if (!(ls >> a >> b)) {
                        schema_finding("malformed schema line: `" +
                                       kind +
                                       "` needs <category> <name>");
                        continue;
                    }
                    e.category = a;
                    e.name = b;
                } else if (kind == "counter" || kind == "gauge" ||
                           kind == "hist") {
                    if (!(ls >> a)) {
                        schema_finding("malformed schema line: `" +
                                       kind + "` needs <name>");
                        continue;
                    }
                    e.name = a;
                } else {
                    schema_finding("unknown schema kind `" + kind +
                                   "` (expected counter, gauge, hist, "
                                   "span, or instant)");
                    continue;
                }
                const auto key = std::make_pair(e.kind, e.name);
                if (schema.count(key)) {
                    schema_finding("duplicate schema entry `" + e.kind +
                                   " " + e.name + "`");
                    continue;
                }
                schema.emplace(key, std::move(e));
            }
        }
    }

    bool any_usage = false;
    for (const SourceFile &f : ctx.files) {
        if (!inSrc(f) || isTelemetrySink(f))
            continue;
        const std::vector<Token> &t = f.lex.tokens;
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
            if (t[i].kind != TokenKind::Identifier)
                continue;
            const auto it = kMacroKind.find(t[i].text);
            if (it == kMacroKind.end() || !t[i + 1].is("("))
                continue;
            any_usage = true;
            const std::string &kind = it->second;
            const bool has_category =
                kind == "span" || kind == "instant";
            const Token *category = nullptr;
            const Token *name = nullptr;
            if (has_category) {
                if (t[i + 2].kind == TokenKind::String &&
                    i + 4 < t.size() && t[i + 3].is(",") &&
                    t[i + 4].kind == TokenKind::String) {
                    category = &t[i + 2];
                    name = &t[i + 4];
                }
            } else if (t[i + 2].kind == TokenKind::String) {
                name = &t[i + 2];
            }
            if (!name) {
                add(findings, f, "telemetry-names", t[i].line,
                    t[i].col,
                    t[i].text +
                        " name is not a string literal; the schema "
                        "check needs literal names (hoist dynamic "
                        "names behind a literal prefix)");
                continue;
            }
            if (!schema_present)
                continue; // reported once below
            const auto key = std::make_pair(kind, name->text);
            const auto entry = schema.find(key);
            if (entry == schema.end()) {
                std::string suggestion;
                std::size_t best = 3;
                for (const auto &[k, e] : schema) {
                    if (k.first != kind)
                        continue;
                    const std::size_t d =
                        editDistance(k.second, name->text);
                    if (d < best) {
                        best = d;
                        suggestion = k.second;
                    }
                }
                add(findings, f, "telemetry-names", name->line,
                    name->col,
                    "unregistered telemetry " + kind + " name \"" +
                        name->text + "\"" +
                        (suggestion.empty()
                             ? std::string("; add it to ") + schema_rel
                             : "; did you mean \"" + suggestion +
                                   "\"? (" + schema_rel + ")"),
                    Severity::Error, kind + ":" + name->text);
                continue;
            }
            entry->second.used = true;
            if (has_category && category &&
                entry->second.category != category->text)
                add(findings, f, "telemetry-names", category->line,
                    category->col,
                    "telemetry " + kind + " \"" + name->text +
                        "\" uses category \"" + category->text +
                        "\" but the schema registers \"" +
                        entry->second.category + "\"",
                    Severity::Error,
                    "category:" + name->text + ":" + category->text);
        }
    }

    if (!schema_present) {
        if (any_usage) {
            Finding f;
            f.rule = "telemetry-names";
            f.file = schema_rel;
            f.line = 0;
            f.message = "telemetry macros are used under src/ but the "
                        "schema file " +
                        schema_rel + " does not exist";
            f.fingerprint = "telemetry-names|" + schema_rel + "|missing";
            findings.push_back(std::move(f));
        }
        return;
    }
    for (const auto &[key, e] : schema) {
        if (e.used)
            continue;
        Finding f;
        f.rule = "telemetry-names";
        f.file = schema_rel;
        f.line = e.line;
        f.message = "stale schema entry `" + e.kind + " " + e.name +
                    "`: no src/ call site uses it; remove it or "
                    "restore the call site";
        f.fingerprint =
            "telemetry-names|" + schema_rel + "|stale:" + e.name;
        findings.push_back(std::move(f));
    }
}

} // namespace

const std::vector<RuleMeta> &
ruleCatalogue()
{
    static const std::vector<RuleMeta> rules = {
        {"determinism-unordered",
         "No hash-ordered containers in src/ library code; iteration "
         "or export order could reach results"},
        {"determinism-random",
         "No unseeded/global randomness outside common/rng.hh"},
        {"determinism-wall-clock",
         "No wall-clock reads in result-bearing code"},
        {"determinism-atomic-rmw",
         "No atomic read-modify-write inside lambdas handed to the "
         "deterministic pool"},
        {"hot-path-alloc",
         "No heap allocation in solver kernels (linalg/kernels.cc, "
         "kernels_avx2.cc, simd.cc), functions taking an Arena&, or "
         "lambdas handed to parallelFor/parallelForChunks/runTasks"},
        {"layering",
         "Module includes must follow the DAG common <- linalg <- "
         "{hw, mdfg, dataset} <- {slam, baseline} <- {synth, runtime} "
         "<- service (only bench/examples may depend on service)"},
        {"global-state",
         "No mutable static/thread_local variables in src/: "
         "process-global state couples concurrent sessions; waived "
         "sites (pool, telemetry) must carry a justification"},
        {"contract-coverage",
         "linalg/hw functions taking Matrix/Vector parameters must "
         "assert dimension contracts; coverage is gated per module"},
        {"telemetry-names",
         "Telemetry span/counter/gauge/histogram names must match the "
         "checked-in schema (no typos, duplicates, or stale entries)"},
        {"naked-new", "RAII ownership only: no naked new/delete"},
        {"raw-thread",
         "All parallelism goes through archytas::parallel, never raw "
         "std::thread/std::async"},
        {"nodiscard-status",
         "Status-carrying return types in src/ headers must be "
         "[[nodiscard]]"},
        {"direct-io",
         "No direct stream/printf output in src/ library code"},
        {"waiver-syntax", "Malformed analyzer waiver comments"},
    };
    return rules;
}

void
runAllChecks(const AnalysisContext &ctx, std::vector<Finding> &findings,
             std::vector<CoverageRow> &coverage)
{
    for (const SourceFile &f : ctx.files) {
        checkDeterminism(ctx, f, findings);
        checkHotPathAlloc(f, findings);
        checkGlobalState(f, findings);
        checkLayering(f, findings);
        checkStyle(f, findings);
        checkNodiscard(f, findings);
    }
    checkContractCoverage(ctx, findings, coverage);
    checkTelemetryNames(ctx, findings);
}

} // namespace archytas::analyzer
