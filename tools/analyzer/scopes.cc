#include "scopes.hh"

#include <cstddef>

namespace archytas::analyzer {

namespace {

const std::size_t kNpos = static_cast<std::size_t>(-1);

bool
isIdent(const Token &t)
{
    return t.kind == TokenKind::Identifier;
}

/** Index of the matching closer for the opener at `i`, or kNpos. */
std::size_t
matchPair(const std::vector<Token> &t, std::size_t i, const char *open,
          const char *close)
{
    std::size_t depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (t[j].is(open))
            ++depth;
        else if (t[j].is(close)) {
            if (--depth == 0)
                return j;
        }
    }
    return kNpos;
}

/**
 * Matches a template argument list starting at the '<' at `i`; returns
 * the index just past the closing '>', or kNpos when this '<' is not a
 * template introducer (statement terminator reached first). Handles '>>'
 * closing two levels at once.
 */
std::size_t
matchAngles(const std::vector<Token> &t, std::size_t i)
{
    long depth = 0;
    for (std::size_t j = i; j < t.size() && j < i + 200; ++j) {
        const std::string &x = t[j].text;
        if (x == "<")
            ++depth;
        else if (x == ">")
            --depth;
        else if (x == ">>")
            depth -= 2;
        else if (x == ";" || x == "{" || x == "}")
            return kNpos;
        if (depth <= 0)
            return j + 1;
    }
    return kNpos;
}

bool
lambdaIntroContext(const std::vector<Token> &t, std::size_t i)
{
    if (i == 0)
        return true;
    const Token &p = t[i - 1];
    if (p.kind == TokenKind::Identifier)
        return p.is("return") || p.is("co_return");
    static const char *const ok[] = {"(", ",", "=",  "{", ";", "&&",
                                     "||", "?", ":", "<<", nullptr};
    for (const char *const *q = ok; *q; ++q)
        if (p.is(*q))
            return true;
    return false;
}

/**
 * From the token after a lambda's capture list (and parameter list, when
 * present), finds the '{' opening its body, skipping specifiers and a
 * trailing return type. Returns kNpos when no body appears nearby.
 */
std::size_t
findLambdaBodyBrace(const std::vector<Token> &t, std::size_t j)
{
    for (std::size_t steps = 0; j < t.size() && steps < 40; ++steps) {
        const std::string &x = t[j].text;
        if (x == "{")
            return j;
        if (x == ";" || x == ")" || x == "]" || x == "=")
            return kNpos;
        if (x == "<") {
            const std::size_t after = matchAngles(t, j);
            if (after == kNpos)
                return kNpos;
            j = after;
            continue;
        }
        ++j;
    }
    return kNpos;
}

/** Extracts the declared-variable name after a container/atomic type. */
std::string
declaredName(const std::vector<Token> &t, std::size_t type_idx)
{
    std::size_t j = type_idx + 1;
    if (j < t.size() && t[j].is("<")) {
        const std::size_t after = matchAngles(t, j);
        if (after == kNpos)
            return "";
        j = after;
    }
    while (j < t.size() &&
           (t[j].is("&") || t[j].is("*") || t[j].ident("const")))
        ++j;
    if (j < t.size() && isIdent(t[j]))
        return t[j].text;
    return "";
}

bool
isPoolEntryPoint(const std::string &name)
{
    return name == "parallelFor" || name == "parallelForChunks" ||
           name == "runTasks";
}

} // namespace

ScopeInfo
buildScopes(const LexedSource &lex)
{
    const std::vector<Token> &t = lex.tokens;
    ScopeInfo out;

    // Pass 1: lambdas (with optional `auto name = [...]` binding).
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].is("[") || !lambdaIntroContext(t, i))
            continue;
        const std::size_t close = matchPair(t, i, "[", "]");
        if (close == kNpos)
            continue;
        std::size_t j = close + 1;
        if (j < t.size() && t[j].is("(")) {
            const std::size_t pclose = matchPair(t, j, "(", ")");
            if (pclose == kNpos)
                continue;
            j = pclose + 1;
        }
        const std::size_t brace = findLambdaBodyBrace(t, j);
        if (brace == kNpos)
            continue;
        const std::size_t bclose = matchPair(t, brace, "{", "}");
        if (bclose == kNpos)
            continue;
        LambdaInfo lam;
        lam.intro = i;
        lam.body = {brace + 1, bclose};
        if (i >= 2 && t[i - 1].is("=") && isIdent(t[i - 2])) {
            for (std::size_t back = 3; back <= 5 && back <= i; ++back) {
                if (t[i - back].ident("auto")) {
                    lam.name = t[i - 2].text;
                    break;
                }
            }
        }
        out.lambdas.push_back(lam);
    }

    // Pass 2: mark lambdas handed to the deterministic pool as hot,
    // whether written inline or bound to a name first.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t[i]) || !isPoolEntryPoint(t[i].text) ||
            !t[i + 1].is("("))
            continue;
        const std::size_t close = matchPair(t, i + 1, "(", ")");
        if (close == kNpos)
            continue;
        for (LambdaInfo &lam : out.lambdas)
            if (lam.intro > i + 1 && lam.intro < close)
                lam.hot = true;
        for (std::size_t k = i + 2; k < close; ++k) {
            if (!isIdent(t[k]))
                continue;
            for (LambdaInfo &lam : out.lambdas)
                if (!lam.name.empty() && lam.name == t[k].text)
                    lam.hot = true;
        }
    }

    // Pass 3: std::unordered_* and std::atomic declarations.
    for (std::size_t i = 2; i < t.size(); ++i) {
        if (!isIdent(t[i]) || !t[i - 1].is("::") ||
            !t[i - 2].ident("std"))
            continue;
        const std::string &name = t[i].text;
        const bool unordered = name == "unordered_map" ||
                               name == "unordered_set" ||
                               name == "unordered_multimap" ||
                               name == "unordered_multiset";
        const bool atomic = name == "atomic";
        if (!unordered && !atomic)
            continue;
        VarDecl d;
        d.type = name;
        d.line = t[i].line;
        d.name = declaredName(t, i);
        (unordered ? out.unordered_decls : out.atomic_decls)
            .push_back(std::move(d));
    }

    // Pass 4: range-for statements.
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!t[i].ident("for") || !t[i + 1].is("("))
            continue;
        const std::size_t close = matchPair(t, i + 1, "(", ")");
        if (close == kNpos)
            continue;
        std::size_t colon = kNpos;
        std::size_t depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].is("(") || t[j].is("[") || t[j].is("{"))
                ++depth;
            else if (t[j].is(")") || t[j].is("]") || t[j].is("}"))
                --depth;
            else if (t[j].is(":") && depth == 0) {
                colon = j;
                break;
            } else if (t[j].is(";"))
                break; // classic for loop
        }
        if (colon == kNpos)
            continue;
        RangeFor rf;
        rf.line = t[i].line;
        for (std::size_t j = colon + 1; j < close; ++j)
            if (isIdent(t[j]) && !t[j].ident("std") &&
                !t[j].ident("const")) {
                rf.base_ident = t[j].text;
                break;
            }
        out.range_fors.push_back(std::move(rf));
    }

    // Pass 5: function definitions and declarations. A lightweight
    // brace classifier keeps detection at namespace/class scope only.
    enum class Brace { Namespace, NamespaceAnon, Class, Other };
    std::vector<Brace> stack;
    std::size_t anon_ns_depth = 0;
    bool pending_ns = false;
    bool pending_ns_anon = false;
    bool pending_class = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.ident("namespace")) {
            pending_ns = true;
            pending_ns_anon = !(i + 1 < t.size() && isIdent(t[i + 1]));
            continue;
        }
        if (tok.ident("class") || tok.ident("struct") ||
            tok.ident("union") || tok.ident("enum")) {
            pending_class = true;
            continue;
        }
        if (tok.is(";"))
            pending_class = false; // forward declaration
        if (tok.is("{")) {
            if (pending_ns) {
                stack.push_back(pending_ns_anon ? Brace::NamespaceAnon
                                                : Brace::Namespace);
                if (pending_ns_anon)
                    ++anon_ns_depth;
                pending_ns = false;
            } else if (pending_class) {
                stack.push_back(Brace::Class);
                pending_class = false;
            } else {
                stack.push_back(Brace::Other);
            }
            continue;
        }
        if (tok.is("}")) {
            if (!stack.empty()) {
                if (stack.back() == Brace::NamespaceAnon &&
                    anon_ns_depth > 0)
                    --anon_ns_depth;
                stack.pop_back();
            }
            continue;
        }

        const bool at_decl_scope =
            stack.empty() || stack.back() == Brace::Namespace ||
            stack.back() == Brace::NamespaceAnon ||
            stack.back() == Brace::Class;
        if (!at_decl_scope || !isIdent(tok) || i + 1 >= t.size() ||
            !t[i + 1].is("("))
            continue;
        static const char *const kNotFunctions[] = {
            "if", "for", "while", "switch", "return", "catch", "sizeof",
            "alignof", "new", "delete", "operator", "static_assert",
            "decltype", "defined", "assert", nullptr};
        bool skip = false;
        for (const char *const *q = kNotFunctions; *q; ++q)
            if (tok.is(*q))
                skip = true;
        if (skip)
            continue;
        // The name must follow something type-like; rules out calls in
        // brace-initializers and macro invocations at class scope.
        if (i == 0)
            continue;
        const Token &prev = t[i - 1];
        const bool type_ish =
            (prev.kind == TokenKind::Identifier && !prev.is("return")) ||
            prev.is("&") || prev.is("*") || prev.is(">") ||
            prev.is(">>") || prev.is("::") || prev.is("]");
        if (!type_ish)
            continue;
        const std::size_t pclose = matchPair(t, i + 1, "(", ")");
        if (pclose == kNpos)
            continue;
        // Walk the trailer to the body brace, declaration semicolon, or
        // something that disqualifies the candidate.
        std::size_t j = pclose + 1;
        bool is_def = false;
        bool is_decl = false;
        for (std::size_t steps = 0; j < t.size() && steps < 40;
             ++steps) {
            const std::string &x = t[j].text;
            if (x == "{") {
                is_def = true;
                break;
            }
            if (x == ";") {
                is_decl = true;
                break;
            }
            if (x == ":") { // constructor initializer list
                ++j;
                std::size_t guard = 0;
                while (j < t.size() && ++guard < 400) {
                    // member name (possibly qualified/templated)
                    while (j < t.size() &&
                           (isIdent(t[j]) || t[j].is("::")))
                        ++j;
                    if (j < t.size() && t[j].is("<")) {
                        const std::size_t after = matchAngles(t, j);
                        if (after == kNpos)
                            break;
                        j = after;
                    }
                    if (j >= t.size())
                        break;
                    if (t[j].is("(") || t[j].is("{")) {
                        const std::size_t c =
                            t[j].is("(") ? matchPair(t, j, "(", ")")
                                         : matchPair(t, j, "{", "}");
                        if (c == kNpos)
                            break;
                        j = c + 1;
                    }
                    if (j < t.size() && t[j].is(",")) {
                        ++j;
                        continue;
                    }
                    break;
                }
                continue; // expect '{' next iteration
            }
            if (x == "=") {
                // `= default` / `= delete` / pure virtual: declaration.
                is_decl = true;
                break;
            }
            if (x == "<") {
                const std::size_t after = matchAngles(t, j);
                if (after == kNpos)
                    break;
                j = after;
                continue;
            }
            if (isIdent(t[j]) || t[j].is("&") || t[j].is("*") ||
                t[j].is("->") || t[j].is("::") || t[j].is("[") ||
                t[j].is("]") || t[j].is(")") || t[j].is(",")) {
                ++j;
                continue;
            }
            break;
        }
        if (!is_def && !is_decl)
            continue;

        FunctionDef fn;
        fn.name = tok.text;
        fn.line = tok.line;
        fn.params = {i + 2, pclose};
        fn.is_declaration = is_decl;
        fn.in_anon_namespace = anon_ns_depth > 0;
        // Statement prefix: walk back to the previous boundary.
        std::size_t pb = i;
        for (std::size_t back = 0; pb > 0 && back < 16; ++back) {
            const std::string &x = t[pb - 1].text;
            if (x == ";" || x == "{" || x == "}" || x == ":")
                break;
            --pb;
        }
        fn.prefix = {pb, i};
        if (is_def) {
            const std::size_t bclose = matchPair(t, j, "{", "}");
            if (bclose == kNpos)
                continue;
            fn.body = {j + 1, bclose};
            out.functions.push_back(std::move(fn));
            i = bclose; // skip the body: no nested "functions"
        } else {
            out.functions.push_back(std::move(fn));
            i = j;
        }
    }

    return out;
}

} // namespace archytas::analyzer
