/**
 * @file
 * Lightweight scope and declaration tracking over the token stream: no
 * full C++ parse, just the structure the checkers need — lambda bodies
 * (and which of them are passed to the deterministic pool), function
 * definitions with parameter and body token ranges, declarations of
 * hash-ordered containers and atomics, and range-for statements.
 */

#ifndef ARCHYTAS_TOOLS_ANALYZER_SCOPES_HH
#define ARCHYTAS_TOOLS_ANALYZER_SCOPES_HH

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hh"

namespace archytas::analyzer {

/** Half-open token-index range [begin, end). */
struct TokenRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool contains(std::size_t idx) const
    {
        return idx >= begin && idx < end;
    }
};

struct LambdaInfo {
    std::size_t intro = 0; // index of the '[' token
    TokenRange body;       // inside the braces, braces excluded
    std::string name;      // "" unless bound as `auto name = [...]`
    bool hot = false;      // passed to parallelFor/ForChunks/runTasks
};

struct FunctionDef {
    std::string name;
    std::size_t line = 0;
    TokenRange params; // inside the parens
    TokenRange body;   // inside the braces ({0,0} for declarations)
    bool is_declaration = false; // prototype ending in ';'
    bool in_anon_namespace = false;
    /** Tokens of the statement prefix (return type, attributes). */
    TokenRange prefix;
};

struct VarDecl {
    std::string name; // may be "" when extraction failed
    std::string type; // "unordered_map", "unordered_set", "atomic", ...
    std::size_t line = 0;
};

struct RangeFor {
    std::size_t line = 0;
    std::string base_ident; // first identifier of the range expression
};

struct ScopeInfo {
    std::vector<LambdaInfo> lambdas;
    std::vector<FunctionDef> functions;
    std::vector<VarDecl> unordered_decls;
    std::vector<VarDecl> atomic_decls;
    std::vector<RangeFor> range_fors;
};

/** Builds the scope info for one lexed file. */
ScopeInfo buildScopes(const LexedSource &lex);

} // namespace archytas::analyzer

#endif // ARCHYTAS_TOOLS_ANALYZER_SCOPES_HH
