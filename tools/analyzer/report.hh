/**
 * @file
 * Report writers: the one-line-per-finding text report (what CI logs
 * and the fixture goldens capture) and SARIF 2.1.0 for code-scanning
 * upload.
 */

#ifndef ARCHYTAS_TOOLS_ANALYZER_REPORT_HH
#define ARCHYTAS_TOOLS_ANALYZER_REPORT_HH

#include <string>
#include <vector>

#include "checks.hh"
#include "model.hh"

namespace archytas::analyzer {

/** Sorts findings by (file, line, col, rule, message) in place. */
void sortFindings(std::vector<Finding> &findings);

/** `path:line:col: error|note: [rule] message`, one line each. */
std::string textReport(const std::vector<Finding> &findings);

/** One-line per-module coverage summary ("" when empty). */
std::string coverageReport(const std::vector<CoverageRow> &coverage);

/** Minimal SARIF 2.1.0 document with the rule catalogue as metadata. */
std::string sarifReport(const std::vector<Finding> &findings);

} // namespace archytas::analyzer

#endif // ARCHYTAS_TOOLS_ANALYZER_REPORT_HH
