/**
 * @file
 * Preprocessor-aware C++ lexer for archytas-analyzer. Produces a token
 * stream with comments and string literals removed (but retained on the
 * side: comments carry waivers, string literals carry telemetry names),
 * and preprocessor directives lifted out of the stream so their contents
 * (`#include <map>`, macro bodies' backslash continuations) cannot
 * confuse the token-level checkers.
 */

#ifndef ARCHYTAS_TOOLS_ANALYZER_LEXER_HH
#define ARCHYTAS_TOOLS_ANALYZER_LEXER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace archytas::analyzer {

enum class TokenKind {
    Identifier, // identifiers and keywords alike
    Number,
    String,  // text holds the literal's contents, quotes stripped
    CharLit,
    Punct,   // multi-char operators kept whole ("::", "->", "<<", ...)
    EndOfFile,
};

struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    std::size_t line = 0; // 1-based
    std::size_t col = 0;  // 1-based

    bool is(const char *t) const { return text == t; }
    bool ident(const char *t) const
    {
        return kind == TokenKind::Identifier && text == t;
    }
};

struct Comment {
    std::size_t line = 0;     // line the comment starts on
    std::size_t end_line = 0; // last line (differs for block comments)
    bool owns_line = false;   // no code before it on its line
    std::string text;         // contents without the // or /* */
};

struct IncludeDirective {
    std::size_t line = 0;
    std::string path;   // as written between the delimiters
    bool angled = false; // <...> rather than "..."
};

struct Directive {
    std::size_t line = 0;
    std::string text; // continuation-joined full directive, '#' included
};

/** One lexed translation unit. */
struct LexedSource {
    std::vector<Token> tokens; // terminated by an EndOfFile token
    std::vector<Comment> comments;
    std::vector<IncludeDirective> includes;
    std::vector<Directive> directives;
};

/** Lexes `text`; never fails (unterminated constructs end at EOF). */
LexedSource lex(const std::string &text);

} // namespace archytas::analyzer

#endif // ARCHYTAS_TOOLS_ANALYZER_LEXER_HH
