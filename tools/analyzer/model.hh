/**
 * @file
 * Shared data model of archytas-analyzer: analyzed source files, the
 * module layering table, findings, waivers, and the analysis context
 * handed to every checker.
 */

#ifndef ARCHYTAS_TOOLS_ANALYZER_MODEL_HH
#define ARCHYTAS_TOOLS_ANALYZER_MODEL_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"
#include "scopes.hh"

namespace archytas::analyzer {

/** One file under analysis, path always repo-relative POSIX. */
struct SourceFile {
    std::string path;    // e.g. "src/linalg/kernels.cc"
    std::string module;  // e.g. "linalg" ("" when not under src/)
    bool is_header = false;
    LexedSource lex;
    ScopeInfo scopes;
    std::vector<std::string> raw_lines; // for fingerprints and reports

    /** Whitespace-collapsed source line, the fingerprint content key. */
    std::string normalizedLine(std::size_t line) const;
};

enum class Severity { Error, Note };

struct Finding {
    std::string rule;
    std::string file;
    std::size_t line = 0;
    std::size_t col = 0;
    std::string message;
    Severity severity = Severity::Error;
    /**
     * Stable identity for the committed baseline: rule|file|key where
     * key is rule-specific content (an include path, a symbol, or the
     * normalized source line) so entries survive unrelated line drift.
     */
    std::string fingerprint;
};

/**
 * The module DAG from docs/STATIC_ANALYSIS.md:
 *   common <- linalg <- {hw, mdfg, dataset} <- {slam, baseline}
 *                                           <- {synth, runtime}
 * A module may include itself and strictly lower ranks; upward and
 * lateral includes are layering findings.
 */
int moduleRank(const std::string &module); // -1 for unknown modules

struct Config {
    std::string root;            // absolute repo root
    std::string schema_path;     // telemetry schema (repo-relative)
    double contract_threshold = 80.0; // min % covered per module
    bool verbose = false;
};

struct AnalysisContext {
    Config config;
    std::vector<SourceFile> files;
    /** Names declared anywhere with an unordered container type. */
    std::set<std::string> unordered_names;
    /** Names declared anywhere with std::atomic type. */
    std::set<std::string> atomic_names;
};

/** rule -> waived line set, parsed from analyzer waiver comments. */
struct FileWaivers {
    // line -> rules waived on that line
    std::map<std::size_t, std::set<std::string>> by_line;
    bool waives(const std::string &rule, std::size_t line) const
    {
        const auto it = by_line.find(line);
        return it != by_line.end() && it->second.count(rule) > 0;
    }
};

/**
 * Parses `// archytas-analyzer: allow(rule-a,rule-b) -- justification`
 * comments. A comment that owns its line waives the next code line as
 * well; one appended to code waives its own line. Waivers lacking the
 * ` -- justification` tail are reported as `waiver-syntax` findings.
 */
FileWaivers parseWaivers(const SourceFile &file,
                         std::vector<Finding> &findings);

} // namespace archytas::analyzer

#endif // ARCHYTAS_TOOLS_ANALYZER_MODEL_HH
