#include "report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace archytas::analyzer {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

void
sortFindings(std::vector<Finding> &findings)
{
    std::stable_sort(
        findings.begin(), findings.end(),
        [](const Finding &a, const Finding &b) {
            return std::tie(a.file, a.line, a.col, a.rule, a.message) <
                   std::tie(b.file, b.line, b.col, b.rule, b.message);
        });
    findings.erase(
        std::unique(findings.begin(), findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.col == b.col && a.rule == b.rule &&
                               a.message == b.message;
                    }),
        findings.end());
}

std::string
textReport(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    for (const Finding &f : findings) {
        out << f.file << ":" << f.line << ":" << f.col << ": "
            << (f.severity == Severity::Error ? "error" : "note")
            << ": [" << f.rule << "] " << f.message << "\n";
    }
    return out.str();
}

std::string
coverageReport(const std::vector<CoverageRow> &coverage)
{
    if (coverage.empty())
        return "";
    std::ostringstream out;
    out << "contract coverage:";
    for (const CoverageRow &row : coverage)
        out << " " << row.module << " " << row.covered << "/"
            << row.total << " (" << static_cast<int>(row.percent())
            << "%)";
    out << "\n";
    return out.str();
}

std::string
sarifReport(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"archytas-analyzer\",\n"
        << "          \"informationUri\": "
           "\"docs/STATIC_ANALYSIS.md\",\n"
        << "          \"rules\": [\n";
    const std::vector<RuleMeta> &rules = ruleCatalogue();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\"id\": \"" << rules[i].id
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(rules[i].description) << "\"}}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        // SARIF regions are 1-based; clamp whole-file findings.
        const std::size_t line = f.line == 0 ? 1 : f.line;
        const std::size_t col = f.col == 0 ? 1 : f.col;
        out << "        {\n"
            << "          \"ruleId\": \"" << f.rule << "\",\n"
            << "          \"level\": \""
            << (f.severity == Severity::Error ? "error" : "note")
            << "\",\n"
            << "          \"message\": {\"text\": \""
            << jsonEscape(f.message) << "\"},\n"
            << "          \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(f.file)
            << "\"}, \"region\": {\"startLine\": " << line
            << ", \"startColumn\": " << col << "}}}],\n"
            << "          \"partialFingerprints\": "
               "{\"archytasFingerprint/v1\": \""
            << jsonEscape(f.fingerprint) << "\"}\n"
            << "        }" << (i + 1 < findings.size() ? "," : "")
            << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

} // namespace archytas::analyzer
