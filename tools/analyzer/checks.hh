/**
 * @file
 * The checker catalogue of archytas-analyzer. Each checker enforces one
 * project contract (docs/STATIC_ANALYSIS.md has the full catalogue):
 *
 *   determinism-unordered   no std::unordered_* in src/ library code
 *   determinism-random      no unseeded randomness outside common/rng.hh
 *   determinism-wall-clock  no wall-clock reads in result-bearing code
 *   determinism-atomic-rmw  no atomic read-modify-write in pool lambdas
 *   hot-path-alloc          no heap allocation in solver kernels (the
 *                           portable and SIMD TUs), functions taking a
 *                           scratch Arena by reference, or any lambda
 *                           handed to the deterministic pool
 *   layering                module includes must follow the DAG
 *   contract-coverage       linalg/hw functions taking Matrix/Vector
 *                           must carry dimension contracts (gated on a
 *                           per-module coverage percentage)
 *   telemetry-names         telemetry string literals must match the
 *                           checked-in schema (typos, duplicates, stale)
 *   naked-new               RAII ownership only (ported from the lint)
 *   raw-thread              pool-only parallelism (ported)
 *   nodiscard-status        status returns must be [[nodiscard]] (ported)
 *   direct-io               no stream/printf output in library code
 *                           (ported)
 *   waiver-syntax           malformed waiver comments
 */

#ifndef ARCHYTAS_TOOLS_ANALYZER_CHECKS_HH
#define ARCHYTAS_TOOLS_ANALYZER_CHECKS_HH

#include <string>
#include <vector>

#include "model.hh"

namespace archytas::analyzer {

struct RuleMeta {
    const char *id;
    const char *description;
};

/** Stable rule catalogue, for SARIF metadata and --list-rules. */
const std::vector<RuleMeta> &ruleCatalogue();

/** Per-module contract coverage, filled by the contract checker. */
struct CoverageRow {
    std::string module;
    std::size_t covered = 0;
    std::size_t total = 0;
    double percent() const
    {
        return total == 0 ? 100.0
                          : 100.0 * static_cast<double>(covered) /
                                static_cast<double>(total);
    }
};

/** Runs every checker over the loaded context. */
void runAllChecks(const AnalysisContext &ctx,
                  std::vector<Finding> &findings,
                  std::vector<CoverageRow> &coverage);

} // namespace archytas::analyzer

#endif // ARCHYTAS_TOOLS_ANALYZER_CHECKS_HH
