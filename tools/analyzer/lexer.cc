#include "lexer.hh"

#include <cctype>

namespace archytas::analyzer {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const char *const kPuncts3[] = {"<<=", ">>=", "->*", "...", nullptr};
const char *const kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "++", "--", "##",
                                nullptr};

} // namespace

LexedSource
lex(const std::string &text)
{
    LexedSource out;
    std::size_t i = 0;
    const std::size_t n = text.size();
    std::size_t line = 1;
    std::size_t col = 1;
    bool line_has_code = false;

    const auto peek = [&](std::size_t k) -> char {
        return i + k < n ? text[i + k] : '\0';
    };
    const auto advance = [&](std::size_t k) {
        for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
                line_has_code = false;
            } else {
                ++col;
            }
        }
    };
    const auto push = [&](TokenKind kind, std::string tok_text,
                          std::size_t tok_line, std::size_t tok_col) {
        Token t;
        t.kind = kind;
        t.text = std::move(tok_text);
        t.line = tok_line;
        t.col = tok_col;
        out.tokens.push_back(std::move(t));
        line_has_code = true;
    };

    while (i < n) {
        const char c = text[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Preprocessor directive: '#' first non-whitespace on the line.
        if (c == '#' && !line_has_code) {
            Directive d;
            d.line = line;
            std::string body;
            while (i < n) {
                const char dc = text[i];
                if (dc == '\\' && (peek(1) == '\n' ||
                                   (peek(1) == '\r' && peek(2) == '\n'))) {
                    body.push_back(' ');
                    advance(peek(1) == '\n' ? 2 : 3);
                    continue;
                }
                if (dc == '\n')
                    break;
                // Directive-embedded comments end the logical text.
                if (dc == '/' && peek(1) == '/')
                    break;
                if (dc == '/' && peek(1) == '*') {
                    advance(2);
                    while (i < n && !(text[i] == '*' && peek(1) == '/'))
                        advance(1);
                    advance(2);
                    body.push_back(' ');
                    continue;
                }
                body.push_back(dc);
                advance(1);
            }
            d.text = body;
            // Parse `#include "x"` / `#include <x>`.
            std::size_t p = 1;
            while (p < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[p])))
                ++p;
            if (body.compare(p, 7, "include") == 0) {
                p += 7;
                while (p < body.size() &&
                       std::isspace(static_cast<unsigned char>(body[p])))
                    ++p;
                if (p < body.size() &&
                    (body[p] == '"' || body[p] == '<')) {
                    const char close = body[p] == '"' ? '"' : '>';
                    IncludeDirective inc;
                    inc.line = d.line;
                    inc.angled = close == '>';
                    const std::size_t start = p + 1;
                    const std::size_t end = body.find(close, start);
                    if (end != std::string::npos) {
                        inc.path = body.substr(start, end - start);
                        out.includes.push_back(std::move(inc));
                    }
                }
            }
            out.directives.push_back(std::move(d));
            continue;
        }

        // Comments.
        if (c == '/' && peek(1) == '/') {
            Comment cm;
            cm.line = line;
            cm.owns_line = !line_has_code;
            advance(2);
            while (i < n && text[i] != '\n') {
                cm.text.push_back(text[i]);
                advance(1);
            }
            cm.end_line = cm.line;
            out.comments.push_back(std::move(cm));
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            Comment cm;
            cm.line = line;
            cm.owns_line = !line_has_code;
            advance(2);
            while (i < n && !(text[i] == '*' && peek(1) == '/')) {
                cm.text.push_back(text[i]);
                advance(1);
            }
            advance(2);
            cm.end_line = line;
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"' &&
            (out.tokens.empty() ||
             out.tokens.back().kind != TokenKind::Identifier ||
             !identChar(c))) {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && text[p] != '(' && delim.size() < 16)
                delim.push_back(text[p++]);
            if (p < n && text[p] == '(') {
                const std::string close = ")" + delim + "\"";
                const std::size_t body_start = p + 1;
                const std::size_t end = text.find(close, body_start);
                const std::size_t tok_line = line;
                const std::size_t tok_col = col;
                const std::size_t stop =
                    end == std::string::npos ? n : end + close.size();
                std::string contents = text.substr(
                    body_start, (end == std::string::npos ? n : end) -
                                    body_start);
                advance(stop - i);
                push(TokenKind::String, std::move(contents), tok_line,
                     tok_col);
                continue;
            }
        }

        // String / char literals (with escape handling).
        if (c == '"' || c == '\'') {
            const char quote = c;
            const std::size_t tok_line = line;
            const std::size_t tok_col = col;
            std::string contents;
            advance(1);
            while (i < n && text[i] != quote && text[i] != '\n') {
                if (text[i] == '\\' && i + 1 < n) {
                    contents.push_back(text[i]);
                    contents.push_back(text[i + 1]);
                    advance(2);
                    continue;
                }
                contents.push_back(text[i]);
                advance(1);
            }
            advance(1); // closing quote (or newline/EOF on malformed)
            push(quote == '"' ? TokenKind::String : TokenKind::CharLit,
                 std::move(contents), tok_line, tok_col);
            continue;
        }

        // Identifiers / keywords.
        if (identStart(c)) {
            const std::size_t tok_line = line;
            const std::size_t tok_col = col;
            std::string id;
            while (i < n && identChar(text[i])) {
                id.push_back(text[i]);
                advance(1);
            }
            push(TokenKind::Identifier, std::move(id), tok_line, tok_col);
            continue;
        }

        // Numbers (good enough: digits, dots, exponents, suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            const std::size_t tok_line = line;
            const std::size_t tok_col = col;
            std::string num;
            while (i < n &&
                   (identChar(text[i]) || text[i] == '.' ||
                    ((text[i] == '+' || text[i] == '-') && !num.empty() &&
                     (num.back() == 'e' || num.back() == 'E' ||
                      num.back() == 'p' || num.back() == 'P')))) {
                num.push_back(text[i]);
                advance(1);
            }
            push(TokenKind::Number, std::move(num), tok_line, tok_col);
            continue;
        }

        // Punctuation: longest match first.
        {
            const std::size_t tok_line = line;
            const std::size_t tok_col = col;
            std::string p3{c, peek(1), peek(2)};
            std::string p2{c, peek(1)};
            std::string matched;
            for (const char *const *q = kPuncts3; *q; ++q)
                if (p3 == *q) {
                    matched = p3;
                    break;
                }
            if (matched.empty())
                for (const char *const *q = kPuncts2; *q; ++q)
                    if (p2 == *q) {
                        matched = p2;
                        break;
                    }
            if (matched.empty())
                matched = std::string(1, c);
            advance(matched.size());
            push(TokenKind::Punct, std::move(matched), tok_line, tok_col);
        }
    }

    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.line = line;
    eof.col = col;
    out.tokens.push_back(std::move(eof));
    return out;
}

} // namespace archytas::analyzer
