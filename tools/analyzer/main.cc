/**
 * @file
 * CLI driver of archytas-analyzer. Loads every .cc/.hh under the scan
 * directories, runs the checker catalogue, applies inline waivers and
 * the committed baseline, and writes text (stdout) and optionally
 * SARIF reports.
 *
 * Exit codes: 0 clean, 1 unwaived/non-baselined findings, 2 usage or
 * I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hh"
#include "model.hh"
#include "report.hh"

namespace fs = std::filesystem;
using namespace archytas::analyzer;

namespace {

struct Options {
    std::string root = ".";
    std::string sarif_path;
    std::string baseline_path;
    bool write_baseline = false;
    std::string schema_path = "tools/analyzer/telemetry_schema.txt";
    double contract_threshold = 80.0;
    bool list_rules = false;
    bool verbose = false;
    std::vector<std::string> scan_dirs; // relative to root
};

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options] [scan-dir...]\n"
        << "  --root DIR                repo root (default .)\n"
        << "  --sarif PATH              write SARIF 2.1.0 report\n"
        << "  --baseline PATH           suppress findings whose\n"
        << "                            fingerprints are listed\n"
        << "  --write-baseline PATH     write current fingerprints\n"
        << "  --schema PATH             telemetry schema, repo-relative\n"
        << "                            (default "
           "tools/analyzer/telemetry_schema.txt)\n"
        << "  --contract-threshold PCT  min contract coverage per\n"
        << "                            module (default 80)\n"
        << "  --list-rules              print the rule catalogue\n"
        << "  --verbose                 chatty progress\n"
        << "scan-dirs default to `src` (relative to --root).\n";
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt, std::string &wb_path)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&](std::string &dst) {
            if (i + 1 >= argc)
                return false;
            dst = argv[++i];
            return true;
        };
        if (a == "--root") {
            if (!value(opt.root))
                return false;
        } else if (a == "--sarif") {
            if (!value(opt.sarif_path))
                return false;
        } else if (a == "--baseline") {
            if (!value(opt.baseline_path))
                return false;
        } else if (a == "--write-baseline") {
            opt.write_baseline = true;
            if (!value(wb_path))
                return false;
        } else if (a == "--schema") {
            if (!value(opt.schema_path))
                return false;
        } else if (a == "--contract-threshold") {
            std::string v;
            if (!value(v))
                return false;
            opt.contract_threshold = std::stod(v);
        } else if (a == "--list-rules") {
            opt.list_rules = true;
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "unknown option: " << a << "\n";
            return false;
        } else {
            opt.scan_dirs.push_back(a);
        }
    }
    if (opt.scan_dirs.empty())
        opt.scan_dirs.push_back("src");
    return true;
}

bool
analyzableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

/** Repo-relative POSIX path. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    return fs::relative(p, root).generic_string();
}

std::string
moduleOf(const std::string &rel)
{
    if (rel.rfind("src/", 0) != 0)
        return "";
    const std::size_t second = rel.find('/', 4);
    if (second == std::string::npos)
        return "";
    return rel.substr(4, second - 4);
}

bool
loadFile(const fs::path &abs, const fs::path &root, SourceFile &out)
{
    std::ifstream in(abs, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    out.path = relPath(abs, root);
    out.module = moduleOf(out.path);
    out.is_header = abs.extension() == ".hh" ||
                    abs.extension() == ".hpp";
    out.lex = lex(text);
    out.scopes = buildScopes(out.lex);
    out.raw_lines.clear();
    std::istringstream ls(text);
    std::string line;
    while (std::getline(ls, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        out.raw_lines.push_back(line);
    }
    return true;
}

/** Baseline file: one fingerprint per line, `#` comments. */
std::multiset<std::string>
loadBaseline(const std::string &path, bool &ok)
{
    std::multiset<std::string> out;
    ok = true;
    if (path.empty())
        return out;
    std::ifstream in(path);
    if (!in) {
        ok = false;
        return out;
    }
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r'))
            line.pop_back();
        if (!line.empty())
            out.insert(line);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::string wb_path;
    if (!parseArgs(argc, argv, opt, wb_path))
        return usage(argv[0]);

    if (opt.list_rules) {
        for (const RuleMeta &r : ruleCatalogue())
            std::cout << r.id << "  " << r.description << "\n";
        return 0;
    }

    std::error_code ec;
    const fs::path root = fs::canonical(opt.root, ec);
    if (ec) {
        std::cerr << "error: cannot resolve root '" << opt.root
                  << "': " << ec.message() << "\n";
        return 2;
    }

    // Collect files in sorted order so the run itself is deterministic.
    std::vector<fs::path> paths;
    for (const std::string &dir : opt.scan_dirs) {
        const fs::path scan = root / dir;
        if (!fs::exists(scan)) {
            std::cerr << "error: scan dir does not exist: "
                      << scan.string() << "\n";
            return 2;
        }
        for (fs::recursive_directory_iterator it(scan), end;
             it != end; ++it) {
            if (!it->is_regular_file())
                continue;
            const std::string rel = relPath(it->path(), root);
            // Analyzer test fixtures are deliberately broken inputs.
            if (rel.find("fixtures/") != std::string::npos)
                continue;
            if (analyzableExtension(it->path()))
                paths.push_back(it->path());
        }
    }
    std::sort(paths.begin(), paths.end());

    AnalysisContext ctx;
    ctx.config.root = root.string();
    ctx.config.schema_path = opt.schema_path;
    ctx.config.contract_threshold = opt.contract_threshold;
    ctx.config.verbose = opt.verbose;
    for (const fs::path &p : paths) {
        SourceFile f;
        if (!loadFile(p, root, f)) {
            std::cerr << "error: cannot read " << p.string() << "\n";
            return 2;
        }
        for (const VarDecl &d : f.scopes.unordered_decls)
            if (!d.name.empty())
                ctx.unordered_names.insert(d.name);
        for (const VarDecl &d : f.scopes.atomic_decls)
            if (!d.name.empty())
                ctx.atomic_names.insert(d.name);
        ctx.files.push_back(std::move(f));
    }
    if (opt.verbose)
        std::cerr << "analyzing " << ctx.files.size() << " files under "
                  << root.string() << "\n";

    std::vector<Finding> findings;
    std::vector<CoverageRow> coverage;

    // Waiver-syntax findings surface even when nothing else fires.
    std::map<std::string, FileWaivers> waivers;
    for (const SourceFile &f : ctx.files)
        waivers[f.path] = parseWaivers(f, findings);

    runAllChecks(ctx, findings, coverage);

    // Apply inline waivers.
    std::vector<Finding> kept;
    for (Finding &f : findings) {
        const auto it = waivers.find(f.file);
        if (it != waivers.end() && f.rule != "waiver-syntax" &&
            it->second.waives(f.rule, f.line))
            continue;
        kept.push_back(std::move(f));
    }
    findings = std::move(kept);
    sortFindings(findings);

    if (opt.write_baseline) {
        std::ofstream out(wb_path);
        if (!out) {
            std::cerr << "error: cannot write baseline " << wb_path
                      << "\n";
            return 2;
        }
        out << "# archytas-analyzer baseline: known findings accepted "
               "as debt.\n"
            << "# One fingerprint per line; regenerate with "
               "--write-baseline.\n";
        for (const Finding &f : findings)
            if (f.severity == Severity::Error)
                out << f.fingerprint << "\n";
        std::cerr << "wrote baseline (" << findings.size()
                  << " findings) to " << wb_path << "\n";
        return 0;
    }

    bool baseline_ok = true;
    std::multiset<std::string> baseline =
        loadBaseline(opt.baseline_path, baseline_ok);
    if (!baseline_ok) {
        std::cerr << "error: cannot read baseline "
                  << opt.baseline_path << "\n";
        return 2;
    }

    std::vector<Finding> fresh;     // gate CI
    std::vector<Finding> baselined; // suppressed, shown in verbose
    for (Finding &f : findings) {
        const auto it = baseline.find(f.fingerprint);
        if (it != baseline.end()) {
            baseline.erase(it); // multiset: one entry per occurrence
            baselined.push_back(std::move(f));
        } else {
            fresh.push_back(std::move(f));
        }
    }
    if (!baseline.empty()) {
        std::cerr << "warning: " << baseline.size()
                  << " stale baseline entr"
                  << (baseline.size() == 1 ? "y" : "ies")
                  << " no longer match" << (baseline.size() == 1 ? "es" : "")
                  << " any finding; regenerate with --write-baseline:\n";
        for (const std::string &fp : baseline)
            std::cerr << "  " << fp << "\n";
    }

    std::cout << textReport(fresh);
    std::cout << coverageReport(coverage);
    if (opt.verbose && !baselined.empty()) {
        std::cerr << "baselined findings (" << baselined.size()
                  << "):\n"
                  << textReport(baselined);
    }

    if (!opt.sarif_path.empty()) {
        std::ofstream out(opt.sarif_path);
        if (!out) {
            std::cerr << "error: cannot write SARIF "
                      << opt.sarif_path << "\n";
            return 2;
        }
        out << sarifReport(fresh);
    }

    std::size_t gating = 0;
    for (const Finding &f : fresh)
        if (f.severity == Severity::Error)
            ++gating;
    if (gating > 0) {
        std::cerr << gating << " finding" << (gating == 1 ? "" : "s")
                  << " (see above); waive with `// archytas-analyzer: "
                     "allow(<rule>) -- <justification>` or baseline "
                     "architectural debt\n";
        return 1;
    }
    if (opt.verbose)
        std::cerr << "clean\n";
    return 0;
}
