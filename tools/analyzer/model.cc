#include "model.hh"

#include <cctype>

namespace archytas::analyzer {

int
moduleRank(const std::string &module)
{
    if (module == "common")
        return 0;
    if (module == "linalg")
        return 1;
    if (module == "hw" || module == "mdfg" || module == "dataset")
        return 2;
    if (module == "slam" || module == "baseline")
        return 3;
    if (module == "synth" || module == "runtime")
        return 4;
    if (module == "service")
        return 5;
    return -1;
}

namespace {

/** Trims ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

std::string
SourceFile::normalizedLine(std::size_t line) const
{
    if (line == 0 || line > raw_lines.size())
        return "";
    const std::string &raw = raw_lines[line - 1];
    std::string out;
    bool pending_space = false;
    for (char c : raw) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            pending_space = !out.empty();
            continue;
        }
        if (pending_space) {
            out.push_back(' ');
            pending_space = false;
        }
        out.push_back(c);
    }
    return out;
}

FileWaivers
parseWaivers(const SourceFile &file, std::vector<Finding> &findings)
{
    FileWaivers out;
    static const std::string kMarker = "archytas-analyzer:";
    const std::vector<Comment> &comments = file.lex.comments;
    for (std::size_t ci = 0; ci < comments.size(); ++ci) {
        const Comment &cm = comments[ci];
        const std::size_t at = cm.text.find(kMarker);
        if (at == std::string::npos)
            continue;
        std::string rest = trim(cm.text.substr(at + kMarker.size()));
        const auto fail = [&](const std::string &why) {
            Finding f;
            f.rule = "waiver-syntax";
            f.file = file.path;
            f.line = cm.line;
            f.message = "malformed analyzer waiver: " + why +
                        " (expected `archytas-analyzer: allow(<rule>) "
                        "-- <justification>`)";
            f.fingerprint = f.rule + "|" + f.file + "|" + cm.text;
            findings.push_back(std::move(f));
        };
        if (rest.compare(0, 6, "allow(") != 0) {
            fail("missing allow(...)");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            fail("unterminated allow(");
            continue;
        }
        const std::string rules_text = rest.substr(6, close - 6);
        const std::string tail = trim(rest.substr(close + 1));
        if (tail.compare(0, 2, "--") != 0 ||
            trim(tail.substr(2)).empty()) {
            fail("missing ` -- <justification>` tail");
            continue;
        }
        std::set<std::string> rules;
        std::size_t pos = 0;
        while (pos <= rules_text.size()) {
            const std::size_t comma = rules_text.find(',', pos);
            const std::string one =
                trim(comma == std::string::npos
                         ? rules_text.substr(pos)
                         : rules_text.substr(pos, comma - pos));
            if (!one.empty())
                rules.insert(one);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (rules.empty()) {
            fail("empty rule list");
            continue;
        }
        // A comment that owns its line(s) waives the next code line; a
        // wrapped justification continues through contiguous own-line
        // `//` comments. One appended to code waives the lines it spans.
        std::size_t last = cm.end_line;
        if (cm.owns_line)
            for (std::size_t cj = ci + 1; cj < comments.size(); ++cj) {
                const Comment &cont = comments[cj];
                if (!cont.owns_line || cont.line != last + 1)
                    break;
                last = cont.end_line;
            }
        for (std::size_t l = cm.line; l <= last + 1; ++l)
            for (const std::string &r : rules)
                out.by_line[l].insert(r);
    }
    return out;
}

} // namespace archytas::analyzer
